"""Tests for the vectorized 2-opt gain engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.moves import (
    apply_moves,
    batch_improving_moves,
    best_move,
    delta_for_pairs,
    next_distances,
    row_best_moves,
)
from repro.core.pair_indexing import pair_count
from repro.tour.operations import apply_two_opt_move


def random_coords(n, seed=0):
    return np.random.default_rng(seed).uniform(0, 10_000, (n, 2)).astype(np.float32)


def tour_len(c):
    return int(next_distances(c).sum())


def brute_force_best(c):
    """O(n^2) Python reference with the same tie-break (lowest k)."""
    n = c.shape[0]
    dn = next_distances(c)
    best = (np.iinfo(np.int64).max, -1, -1)
    for j in range(1, n):
        for i in range(j):
            d = int(delta_for_pairs(c, np.array([i]), np.array([j]), dn)[0])
            if d < best[0]:
                best = (d, i, j)
    return best


class TestDeltaForPairs:
    def test_delta_equals_actual_length_change(self):
        """The fundamental invariant: applying move (i,j) changes the tour
        length by exactly delta(i,j)."""
        c = random_coords(60, seed=1)
        order = np.arange(60)
        before = tour_len(c)
        rng = np.random.default_rng(2)
        for _ in range(50):
            i = int(rng.integers(0, 58))
            j = int(rng.integers(i + 1, 59))
            d = int(delta_for_pairs(c, np.array([i]), np.array([j]))[0])
            new_order = apply_two_opt_move(order, i, j)
            after = tour_len(c[new_order])
            assert after - before == d, (i, j)

    def test_degenerate_adjacent_pair_is_zero(self):
        c = random_coords(20, seed=3)
        # j = i+1 reverses a single element: no change
        d = delta_for_pairs(c, np.arange(0, 18), np.arange(1, 19))
        assert np.all(d == 0)

    def test_degenerate_full_wrap_is_zero(self):
        c = random_coords(20, seed=4)
        d = delta_for_pairs(c, np.array([0]), np.array([19]))
        assert d[0] == 0

    def test_validates_pairs(self):
        c = random_coords(10)
        with pytest.raises(ValueError):
            delta_for_pairs(c, np.array([5]), np.array([5]))
        with pytest.raises(ValueError):
            delta_for_pairs(c, np.array([0]), np.array([10]))

    def test_wraparound_j_plus_one(self):
        """j = n-1 uses the closing edge (n-1 -> 0)."""
        c = random_coords(30, seed=5)
        order = np.arange(30)
        before = tour_len(c)
        d = int(delta_for_pairs(c, np.array([4]), np.array([29]))[0])
        after = tour_len(c[apply_two_opt_move(order, 4, 29)])
        assert after - before == d


class TestBestMove:
    @pytest.mark.parametrize("n,seed", [(12, 0), (25, 1), (40, 2), (80, 3)])
    def test_matches_brute_force(self, n, seed):
        c = random_coords(n, seed=seed)
        mv = best_move(c)
        bd, bi, bj = brute_force_best(c)
        assert (mv.delta, mv.i, mv.j) == (bd, bi, bj)

    def test_blocked_matches_unblocked(self):
        c = random_coords(200, seed=7)
        a = best_move(c)
        b = best_move(c, block_cells=512)  # force many tiny blocks
        assert (a.delta, a.i, a.j) == (b.delta, b.i, b.j)

    def test_local_minimum_reports_nonnegative(self):
        # a convex polygon tour is 2-opt optimal
        theta = np.linspace(0, 2 * np.pi, 24, endpoint=False)
        c = np.stack([1000 * np.cos(theta), 1000 * np.sin(theta)], axis=1).astype(np.float32)
        assert best_move(c).delta >= 0

    def test_crossed_square_improved(self):
        # 0-2-1-3 square crosses; best move uncrosses it
        c = np.array([[0, 0], [0, 10], [10, 0], [10, 10]], dtype=np.float32)
        mv = best_move(c)
        assert mv.delta < 0
        order2 = apply_two_opt_move(np.arange(4), mv.i, mv.j)
        assert tour_len(c[order2]) == tour_len(c) + mv.delta

    def test_needs_four_cities(self):
        with pytest.raises(ValueError):
            best_move(random_coords(3))

    @given(st.integers(5, 120), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_apply_best_move_never_lengthens(self, n, seed):
        c = random_coords(n, seed=seed)
        mv = best_move(c)
        if mv.delta < 0:
            after = tour_len(c[apply_two_opt_move(np.arange(n), mv.i, mv.j)])
            assert after < tour_len(c)


class TestRowBestMoves:
    def test_row_minima_match_exhaustive(self):
        c = random_coords(50, seed=9)
        bj, bd = row_best_moves(c)
        dn = next_distances(c)
        for i in range(49):
            jj = np.arange(i + 1, 50)
            deltas = delta_for_pairs(c, np.full(jj.size, i), jj, dn)
            assert bd[i] == deltas.min()
            assert bj[i] == jj[np.argmin(deltas)]


class TestBatchMoves:
    def test_batch_moves_disjoint(self):
        c = random_coords(300, seed=11)
        moves = batch_improving_moves(c)
        assert moves  # random tours always have improving moves
        intervals = sorted((m.i, m.j + 1) for m in moves)
        for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
            assert a1 < b0, "intervals must not touch or overlap"

    def test_batch_gain_is_exact(self):
        """Total length change equals the sum of the batched deltas."""
        c = random_coords(300, seed=13)
        moves = batch_improving_moves(c)
        order2 = apply_moves(np.arange(300), moves)
        assert tour_len(c[order2]) == tour_len(c) + sum(m.delta for m in moves)

    def test_all_batch_moves_improving(self):
        c = random_coords(200, seed=15)
        assert all(m.delta < 0 for m in batch_improving_moves(c))

    def test_max_moves_cap(self):
        c = random_coords(400, seed=17)
        assert len(batch_improving_moves(c, max_moves=3)) <= 3

    def test_empty_at_local_minimum(self):
        theta = np.linspace(0, 2 * np.pi, 32, endpoint=False)
        c = np.stack([1000 * np.cos(theta), 1000 * np.sin(theta)], axis=1).astype(np.float32)
        assert batch_improving_moves(c) == []

    @given(st.integers(20, 150), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_batch_apply_is_permutation_and_shorter(self, n, seed):
        c = random_coords(n, seed=seed)
        moves = batch_improving_moves(c)
        order2 = apply_moves(np.arange(n), moves)
        assert np.array_equal(np.sort(order2), np.arange(n))
        if moves:
            assert tour_len(c[order2]) < tour_len(c)
