"""Property-based tests for geometric invariances of the move engine."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.moves import (
    batch_improving_moves,
    best_move,
    delta_for_pairs,
    next_distances,
)


def random_coords(n, seed):
    return np.random.default_rng(seed).uniform(0, 5000, (n, 2)).astype(np.float32)


class TestInvariances:
    @given(st.integers(10, 120), st.integers(0, 10**6),
           st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=40, deadline=None)
    def test_translation_invariance(self, n, seed, dx, dy):
        """Integer translations preserve every rounded distance, hence the
        best move (float32 is exact for these magnitudes)."""
        c = random_coords(n, seed)
        shifted = c + np.array([dx, dy], dtype=np.float32)
        a = best_move(c)
        b = best_move(shifted)
        assert (a.i, a.j, a.delta) == (b.i, b.j, b.delta)

    @given(st.integers(10, 100), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_axis_swap_invariance(self, n, seed):
        """Swapping x and y preserves Euclidean distances exactly."""
        c = random_coords(n, seed)
        swapped = c[:, ::-1].copy()
        a = best_move(c)
        b = best_move(swapped)
        assert (a.i, a.j, a.delta) == (b.i, b.j, b.delta)

    @given(st.integers(10, 100), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_delta_lower_bound(self, n, seed):
        """A 2-opt move can remove at most the two old edges entirely:
        delta >= -(d(i,i+1) + d(j,j+1)) for every pair."""
        c = random_coords(n, seed)
        dn = next_distances(c)
        rng = np.random.default_rng(seed)
        i = rng.integers(0, n - 1, size=20)
        j = rng.integers(0, n, size=20)
        lo = np.minimum(i, j % n)
        hi = np.maximum(i, j % n)
        keep = lo < hi
        lo, hi = lo[keep], hi[keep]
        if lo.size == 0:
            return
        deltas = delta_for_pairs(c, lo, hi, dn)
        assert np.all(deltas >= -(dn[lo] + dn[hi]))

    @given(st.integers(12, 80), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_descent_terminates_and_certifies(self, n, seed):
        """Iterating best moves must terminate (lengths strictly decrease
        in the integers) at a state with no improving move."""
        c = random_coords(n, seed).copy()
        for _ in range(10_000):
            mv = best_move(c)
            if mv.delta >= 0:
                break
            c[mv.i + 1 : mv.j + 1] = c[mv.i + 1 : mv.j + 1][::-1]
        else:
            raise AssertionError("descent did not terminate")
        assert best_move(c).delta >= 0

    @given(st.integers(20, 100), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_batch_never_conflicts_with_itself(self, n, seed):
        """All batched intervals disjoint, all improving, gains additive."""
        c = random_coords(n, seed)
        moves = batch_improving_moves(c)
        spans = sorted((m.i, m.j + 1) for m in moves)
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 < b0
        assert all(m.delta < 0 for m in moves)
