"""Tests for the Fig. 3 triangular job-space mapping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pair_indexing import (
    EXACT_FLOAT_MAX,
    iterations_per_thread,
    linear_from_pair,
    pair_count,
    pair_from_linear,
)


class TestPairCount:
    def test_examples_from_paper(self):
        """§IV quotes 4851 pairs for kroE100 (it counts (n-2)(n-3)/2+...;
        our job space is the full strict triangle n(n-1)/2 = 4950)."""
        assert pair_count(100) == 4950
        assert pair_count(4) == 6

    def test_zero_and_one(self):
        assert pair_count(0) == 0
        assert pair_count(1) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pair_count(-1)


class TestDecode:
    def test_fig3_layout(self):
        """The paper's Fig. 3 grid: k=0 -> (0,1), k=1 -> (0,2), k=2 ->
        (1,2), k=3 -> (0,3) ... row-major by j."""
        expected = [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3), (0, 4)]
        for k, (i, j) in enumerate(expected):
            assert pair_from_linear(k) == (i, j)

    def test_scalar_returns_ints(self):
        i, j = pair_from_linear(10)
        assert isinstance(i, int) and isinstance(j, int)

    def test_vectorized_matches_scalar(self):
        ks = np.arange(500)
        i, j = pair_from_linear(ks)
        for k in range(500):
            assert (i[k], j[k]) == pair_from_linear(k)

    def test_bounds_check(self):
        with pytest.raises(ValueError):
            pair_from_linear(pair_count(10), n=10)
        with pytest.raises(ValueError):
            pair_from_linear(-1)

    def test_last_index(self):
        n = 100
        i, j = pair_from_linear(pair_count(n) - 1, n=n)
        assert (i, j) == (n - 2, n - 1)


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=10**12))
    @settings(max_examples=200)
    def test_decode_encode_roundtrip(self, k):
        i, j = pair_from_linear(k)
        assert 0 <= i < j
        assert linear_from_pair(i, j) == k

    @given(st.integers(4, 100_000), st.data())
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_roundtrip(self, n, data):
        j = data.draw(st.integers(1, n - 1))
        i = data.draw(st.integers(0, j - 1))
        k = linear_from_pair(i, j)
        assert pair_from_linear(k) == (i, j)

    def test_every_pair_covered_exactly_once_small(self):
        n = 40
        pairs = set()
        for k in range(pair_count(n)):
            pairs.add(pair_from_linear(k))
        assert len(pairs) == pair_count(n)
        assert pairs == {(i, j) for j in range(n) for i in range(j)}

    def test_encode_rejects_bad_pairs(self):
        with pytest.raises(ValueError):
            linear_from_pair(3, 3)
        with pytest.raises(ValueError):
            linear_from_pair(5, 2)

    def test_float_precision_at_large_k(self):
        """The sqrt decode must stay exact into the 10^11 range
        (lrb744710 has 2.8e11 pairs)."""
        n = 744_710
        for k in [pair_count(n) - 1, pair_count(n) // 2, 10**11]:
            i, j = pair_from_linear(k)
            assert linear_from_pair(i, j) == k


class TestFloat64Boundary:
    """Scalar decode must survive the 2**52 float64 cliff; the
    vectorized path must refuse rather than silently corrupt."""

    BOUNDARY_KS = [
        EXACT_FLOAT_MAX - 1,
        EXACT_FLOAT_MAX,
        EXACT_FLOAT_MAX + 1,
        (1 << 60) + 12345,
    ]

    def test_scalar_exact_across_boundary(self):
        for k in self.BOUNDARY_KS:
            i, j = pair_from_linear(k)
            assert 0 <= i < j
            assert linear_from_pair(i, j) == k

    def test_scalar_consecutive_indices_stay_distinct(self):
        # the float path collapses neighbors here; the exact path must not
        decoded = {pair_from_linear(EXACT_FLOAT_MAX + d) for d in range(8)}
        assert len(decoded) == 8

    def test_vectorized_guard_raises(self):
        ks = np.array([0, EXACT_FLOAT_MAX], dtype=np.int64)
        with pytest.raises(ValueError, match="2\\*\\*52"):
            pair_from_linear(ks)

    def test_vectorized_ok_just_below_boundary(self):
        ks = np.array([EXACT_FLOAT_MAX - 2, EXACT_FLOAT_MAX - 1],
                      dtype=np.int64)
        i, j = pair_from_linear(ks)
        for idx in range(len(ks)):
            assert (int(i[idx]), int(j[idx])) == pair_from_linear(int(ks[idx]))

    def test_encode_huge_row_is_exact(self):
        j = 1 << 30
        k = linear_from_pair(j - 1, j)
        assert isinstance(k, int)
        assert pair_from_linear(k) == (j - 1, j)


class TestIterations:
    def test_paper_worked_example(self):
        """§IV: pr2392 on a 28x1024 launch needs exactly 100 iterations."""
        assert iterations_per_thread(2392, 28 * 1024) == 100

    def test_single_iteration_when_threads_cover(self):
        assert iterations_per_thread(100, 28 * 1024) == 1

    def test_positive_threads_required(self):
        with pytest.raises(ValueError):
            iterations_per_thread(100, 0)
