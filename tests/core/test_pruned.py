"""Tests for neighborhood-pruned 2-opt (§VII extension)."""

import numpy as np
import pytest

from repro.core.moves import best_move, next_distances
from repro.core.pruned import PrunedTwoOpt, pruned_scan_stats
from repro.tsplib.generators import generate_instance


def coords_of(n, seed=0):
    return generate_instance(n, seed=seed).coords_float32()


class TestPrunedTwoOpt:
    def test_candidates_are_canonical(self):
        p = PrunedTwoOpt(coords_of(100), k=5)
        assert np.all(p.candidates[:, 0] < p.candidates[:, 1])
        assert np.unique(p.candidates, axis=0).shape == p.candidates.shape

    def test_candidate_count_bounded(self):
        p = PrunedTwoOpt(coords_of(200), k=6)
        assert p.candidates.shape[0] <= 200 * 6

    def test_run_reaches_pruned_minimum(self):
        c = coords_of(300, seed=1)
        p = PrunedTwoOpt(c, k=8)
        res = p.run()
        # no candidate move improves any more
        assert p.best_move(res.order).delta >= 0

    def test_length_bookkeeping(self):
        c = coords_of(250, seed=2)
        res = PrunedTwoOpt(c, k=8).run()
        assert res.final_length == int(
            next_distances(c[res.order]).sum()
        )

    def test_order_stays_permutation(self):
        c = coords_of(150, seed=3)
        res = PrunedTwoOpt(c, k=4).run()
        assert np.array_equal(np.sort(res.order), np.arange(150))

    def test_quality_close_to_full_2opt(self):
        """§VII's trade-off: small quality loss for big check savings."""
        c = coords_of(400, seed=4)
        from repro.core.local_search import LocalSearch

        full = LocalSearch("gtx680-cuda", strategy="batch").run(c)
        pruned = PrunedTwoOpt(c, k=10).run()
        loss = (pruned.final_length - full.final_length) / full.final_length
        # different trajectories can make the pruned minimum slightly
        # better or slightly worse; both stay within a few percent
        assert -0.05 <= loss < 0.06

    def test_check_count_far_below_full_scan(self):
        n = 400
        c = coords_of(n, seed=5)
        res = PrunedTwoOpt(c, k=8).run()
        full_per_scan = n * (n - 1) // 2
        assert res.pair_checks < res.scans * full_per_scan / 5

    def test_larger_k_at_least_as_good(self):
        c = coords_of(300, seed=6)
        small = PrunedTwoOpt(c, k=3).run()
        large = PrunedTwoOpt(c, k=16).run()
        assert large.final_length <= small.final_length * 1.02

    def test_k_clamped(self):
        p = PrunedTwoOpt(coords_of(10), k=50)
        assert p.k == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            PrunedTwoOpt(coords_of(10), k=0)
        with pytest.raises(ValueError):
            PrunedTwoOpt(np.zeros((3, 2), dtype=np.float32), k=2)

    def test_max_moves(self):
        res = PrunedTwoOpt(coords_of(200, seed=7), k=8).run(max_moves=2)
        assert res.moves_applied == 2


class TestPrunedScanStats:
    def test_counts(self):
        s = pruned_scan_stats(800)
        assert s.pair_checks == 800
        assert s.flops > 0
        assert s.launches == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            pruned_scan_stats(-1)

    def test_much_cheaper_than_full(self):
        from repro.core.two_opt_cpu import cpu_scan_stats

        pruned = pruned_scan_stats(1000 * 8)
        full = cpu_scan_stats(1000)
        assert pruned.flops < full.flops / 20


class TestHonestAccounting:
    """pair_checks must equal the evaluations the scans actually ran."""

    def test_pair_checks_match_scan_evaluations(self):
        c = coords_of(200, seed=8)
        p = PrunedTwoOpt(c, k=6)
        res = p.run()
        # replay the run and count what best_move_scan reports
        order = np.arange(200, dtype=np.int64)
        total = 0
        while True:
            mv, pairs = p.best_move_scan(order)
            total += pairs
            if mv.i < 0 or mv.delta >= 0:
                break
            order[mv.i + 1 : mv.j + 1] = order[mv.i + 1 : mv.j + 1][::-1]
        assert res.pair_checks == total

    def test_count_is_deduplicated_not_flat_nk(self):
        """The flat n*k booking double-counts symmetric candidates."""
        c = coords_of(150, seed=9)
        p = PrunedTwoOpt(c, k=8)
        _, pairs = p.best_move_scan(np.arange(150, dtype=np.int64))
        assert pairs <= p.candidate_pair_count
        assert p.candidate_pair_count < 150 * 8  # mutual pairs collapsed

    def test_adjacent_pairs_not_evaluated(self):
        """Tour-adjacent candidate pairs are identity moves; skip them."""
        c = coords_of(60, seed=10)
        p = PrunedTwoOpt(c, k=59)  # clamp to full neighborhood
        pos = np.arange(60, dtype=np.int64)
        i, j = p._candidate_position_pairs(pos)
        assert np.all(j - i > 1)
        assert not np.any((i == 0) & (j == 59))
        # full neighborhood: all pairs minus the n tour-adjacent ones
        assert i.size == 60 * 59 // 2 - 60

    def test_tie_break_matches_exhaustive_when_unpruned(self):
        """k = n-1 makes the candidate scan the exhaustive scan."""
        for seed in range(5):
            c = coords_of(48, seed=seed)
            p = PrunedTwoOpt(c, k=47)
            order = np.arange(48, dtype=np.int64)
            while True:
                mv = p.best_move(order)
                ref = best_move(c[order])
                if ref.delta >= 0:
                    assert mv.i < 0 or mv.delta >= 0
                    break
                assert (mv.i, mv.j, mv.delta) == (ref.i, ref.j, ref.delta)
                order[mv.i + 1 : mv.j + 1] = order[mv.i + 1 : mv.j + 1][::-1]
