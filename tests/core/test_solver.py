"""Tests for the TwoOptSolver facade."""

import numpy as np
import pytest

from repro.core.solver import TwoOptSolver
from repro.errors import SolverError
from repro.tsplib.generators import generate_instance


class TestBuildInitial:
    @pytest.mark.parametrize("initial", ["greedy", "nearest-neighbor", "random", "identity"])
    def test_all_heuristics_give_permutations(self, inst300, initial):
        order = TwoOptSolver().build_initial(inst300, initial)
        assert np.array_equal(np.sort(order), np.arange(300))

    def test_explicit_array_validated(self, inst100):
        solver = TwoOptSolver()
        order = solver.build_initial(inst100, np.arange(100)[::-1].copy())
        assert order[0] == 99
        with pytest.raises(Exception):
            solver.build_initial(inst100, np.zeros(100, dtype=int))

    def test_unknown_spec(self, inst100):
        with pytest.raises(SolverError):
            TwoOptSolver().build_initial(inst100, "christofides")

    def test_greedy_beats_random_start(self, inst300):
        solver = TwoOptSolver()
        greedy = inst300.tour_length(solver.build_initial(inst300, "greedy"))
        random_ = inst300.tour_length(solver.build_initial(inst300, "random"))
        assert greedy < random_


class TestSolve:
    def test_solve_improves_and_validates(self, inst300):
        res = TwoOptSolver().solve(inst300)
        assert res.final_length < res.initial_length
        assert np.array_equal(np.sort(res.tour.order), np.arange(300))

    def test_canonical_length_close_to_float32_length(self, inst300):
        """The float32 GPU pipeline and the canonical float64 TSPLIB
        metric may differ by rounding on a few edges only."""
        res = TwoOptSolver().solve(inst300)
        assert abs(res.canonical_length - res.final_length) <= inst300.n

    def test_solution_is_2opt_minimum(self, inst300):
        from repro.core.moves import best_move

        res = TwoOptSolver().solve(inst300)
        ordered = inst300.coords[res.tour.order].astype(np.float32)
        assert best_move(ordered).delta >= 0

    def test_seed_reproducible(self, inst300):
        a = TwoOptSolver().solve(inst300, initial="random", seed=5)
        b = TwoOptSolver().solve(inst300, initial="random", seed=5)
        assert np.array_equal(a.tour.order, b.tour.order)

    def test_max_moves_forwarded(self, inst300):
        res = TwoOptSolver().solve(inst300, initial="random", max_moves=3)
        assert res.search.moves_applied == 3

    def test_improvement_percent(self, inst300):
        res = TwoOptSolver().solve(inst300)
        assert 0 < res.improvement_percent < 100

    def test_requires_coordinates(self):
        from repro.tsplib.distances import EdgeWeightType
        from repro.tsplib.instance import TSPInstance

        m = np.array([[0, 1, 2], [1, 0, 3], [2, 3, 0]])
        inst = TSPInstance(name="m", coords=None,
                           metric=EdgeWeightType.EXPLICIT, explicit_matrix=m)
        with pytest.raises(SolverError):
            TwoOptSolver().solve(inst)

    def test_cpu_and_gpu_agree_on_tour(self, inst300):
        g = TwoOptSolver("gtx680-cuda").solve(inst300)
        c = TwoOptSolver("i7-3960x-opencl", backend="cpu-parallel").solve(inst300)
        assert np.array_equal(g.tour.order, c.tour.order)


class TestMetricGuard:
    def test_non_euclidean_metric_rejected(self):
        """The kernels hard-code Listing 1's EUC_2D; silently optimizing
        a GEO/ATT instance with the wrong metric would be a wrong answer,
        so the solver must refuse."""
        from repro.tsplib.distances import EdgeWeightType
        from repro.tsplib.instance import TSPInstance

        coords = np.random.default_rng(0).uniform(0, 90, (30, 2))
        geo = TSPInstance(name="geo30", coords=coords,
                          metric=EdgeWeightType.GEO)
        with pytest.raises(SolverError, match="EUC_2D"):
            TwoOptSolver().solve(geo)

    def test_euclidean_still_accepted(self, inst100):
        assert TwoOptSolver().solve(inst100).final_length > 0
