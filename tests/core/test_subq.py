"""Tests for the sub-quadratic exact best-move engine (Lancia-Vidoni).

The headline guarantee: every scan returns the *same* move as the
exhaustive ``moves.best_move`` — ties included — so a subq descent is
bit-identical to the exhaustive descent while examining fewer pairs.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.local_search import LocalSearch
from repro.core.moves import best_move, next_distances
from repro.core.pair_indexing import pair_count
from repro.core.pruned import PrunedTwoOpt
from repro.core.subq import SubQuadraticTwoOpt, subq_scan_stats
from repro.errors import CheckpointError, SolverError
from repro.tsplib.generators import generate_instance


def coords_of(n, seed=0):
    return generate_instance(n, seed=seed).coords_float32()


def random_coords(n, seed):
    return np.random.default_rng(seed).uniform(0, 5000, (n, 2)).astype(np.float32)


class TestSubqScanStats:
    def test_counts(self):
        s = subq_scan_stats(1234)
        assert s.pair_checks == 1234
        assert s.launches == 1
        assert s.flops > 0
        assert s.special_ops > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            subq_scan_stats(-1)

    def test_scales_linearly_in_pairs(self):
        a = subq_scan_stats(100)
        b = subq_scan_stats(200)
        assert b.flops == 2 * a.flops


class TestEngineConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            SubQuadraticTwoOpt(np.zeros((3, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            SubQuadraticTwoOpt(np.zeros((10, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            SubQuadraticTwoOpt(coords_of(10), order=np.zeros(10, dtype=np.int64))
        with pytest.raises(ValueError):
            SubQuadraticTwoOpt(coords_of(10), rank_block=0)

    def test_private_coordinate_copy(self):
        """Regression: the engine must not alias the caller's buffer.

        LocalSearch reverses its route-ordered coordinates in place; an
        aliased engine would silently lose the city -> coordinate map.
        """
        c = coords_of(60, seed=1)
        eng = SubQuadraticTwoOpt(c)
        ref, _ = eng.best_move()
        c[:] = 0.0  # caller scribbles over its buffer
        again, _ = eng.best_move()
        assert (ref.i, ref.j, ref.delta) == (again.i, again.j, again.delta)

    def test_custom_start_order(self):
        c = coords_of(40, seed=2)
        start = np.random.default_rng(3).permutation(40)
        eng = SubQuadraticTwoOpt(c, order=start)
        assert eng.tour_length == int(next_distances(c[start]).sum())
        eng.verify_consistency()


class TestIncrementalStructure:
    def test_apply_keeps_structure_exact(self):
        c = coords_of(120, seed=4)
        eng = SubQuadraticTwoOpt(c)
        for _ in range(25):
            mv, _ = eng.best_move()
            if mv.i < 0 or mv.delta >= 0:
                break
            eng.apply(mv.i, mv.j)
            eng.verify_consistency()

    def test_apply_validates_move(self):
        eng = SubQuadraticTwoOpt(coords_of(20))
        with pytest.raises(ValueError):
            eng.apply(5, 5)
        with pytest.raises(ValueError):
            eng.apply(-1, 4)
        with pytest.raises(ValueError):
            eng.apply(3, 20)

    def test_rank_block_does_not_change_the_move(self):
        """Blocking trades extra examined pairs for vectorization; the
        returned move must be identical for any block size."""
        c = coords_of(150, seed=5)
        moves = []
        for rb in (1, 7, 64, 4096):
            mv, _ = SubQuadraticTwoOpt(c, rank_block=rb).best_move()
            moves.append((mv.i, mv.j, mv.delta))
        assert len(set(moves)) == 1

    def test_examines_fewer_pairs_than_exhaustive(self):
        c = coords_of(400, seed=6)
        res = SubQuadraticTwoOpt(c).run()
        assert res.pair_checks < res.scans * pair_count(400)
        # the final confirming scan (G stays 0) is the only full one
        assert res.final_length == int(
            next_distances(c[res.order]).sum())


class TestExactParity:
    @given(st.integers(8, 256), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_every_scan_matches_exhaustive(self, n, seed):
        """Move-by-move: subq == moves.best_move, ties included."""
        c = random_coords(n, seed).copy()
        eng = SubQuadraticTwoOpt(c)
        for _ in range(10_000):
            mv, pairs = eng.best_move()
            ref = best_move(c)
            if ref.delta >= 0:
                assert mv.i < 0 or mv.delta >= 0
                break
            assert (mv.i, mv.j, mv.delta) == (ref.i, ref.j, ref.delta)
            assert pairs <= pair_count(n)
            eng.apply(mv.i, mv.j)
            c[mv.i + 1 : mv.j + 1] = c[mv.i + 1 : mv.j + 1][::-1]
        else:
            raise AssertionError("descent did not terminate")

    @given(st.integers(8, 128), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_three_engines_agree_where_guaranteed(self, n, seed):
        """subq == exhaustive bit-identically; pruned with k = n-1 (its
        candidate scan degenerates to the exhaustive scan) matches too."""
        c = random_coords(n, seed)
        sub = SubQuadraticTwoOpt(c).run()
        ref = c.copy()
        for _ in range(10_000):
            mv = best_move(ref)
            if mv.delta >= 0:
                break
            ref[mv.i + 1 : mv.j + 1] = ref[mv.i + 1 : mv.j + 1][::-1]
        ref_len = int(next_distances(ref).sum())
        assert sub.final_length == ref_len
        assert np.array_equal(c[sub.order], ref)
        pruned = PrunedTwoOpt(c, k=n - 1).run()
        assert pruned.final_length == ref_len


class TestLocalSearchIntegration:
    def test_solver_parity_with_exhaustive(self):
        c = coords_of(240, seed=7)
        ex = LocalSearch("gtx680-cuda", strategy="best").run(c)
        sq = LocalSearch("gtx680-cuda", strategy="best",
                         host_engine="subq").run(c)
        assert sq.final_length == ex.final_length
        assert np.array_equal(sq.order, ex.order)
        assert sq.scans == ex.scans
        assert sq.moves_applied == ex.moves_applied
        assert sq.reached_minimum and ex.reached_minimum
        # fewer pairs, proportionally less modeled kernel time ...
        assert sq.stats.pair_checks < ex.stats.pair_checks
        assert sq.kernel_seconds < ex.kernel_seconds
        # ... at the same modeled scan rate (Table II honesty)
        assert sq.checks_per_second == pytest.approx(
            ex.checks_per_second, rel=1e-6)

    def test_validation(self):
        with pytest.raises(SolverError):
            LocalSearch("gtx680-cuda", host_engine="warp-speed")
        with pytest.raises(SolverError):
            LocalSearch("gtx680-cuda", mode="simulate", host_engine="subq")
        with pytest.raises(SolverError):
            LocalSearch("gtx680-cuda", strategy="batch", host_engine="subq")

    def test_solver_facade_passthrough(self):
        from repro.core.solver import TwoOptSolver

        inst = generate_instance(120, seed=8)
        ref = TwoOptSolver("gtx680-cuda", strategy="best").solve(inst)
        sub = TwoOptSolver("gtx680-cuda", strategy="best",
                           host_engine="subq").solve(inst)
        assert sub.final_length == ref.final_length
        assert np.array_equal(sub.search.order, ref.search.order)
        assert sub.search.stats.pair_checks < ref.search.stats.pair_checks


class TestCheckpointResume:
    def _search(self):
        return LocalSearch("gtx680-cuda", strategy="best",
                           host_engine="subq")

    def test_resume_is_bit_identical(self, tmp_path):
        c = coords_of(180, seed=9)
        full = self._search().run(c)
        path = tmp_path / "ck.json"
        part = self._search().run(
            c, max_scans=5, checkpoint_every=2, checkpoint_path=path)
        assert part.scans == 5
        resumed = self._search().run(c, resume_from=path)
        assert resumed.final_length == full.final_length
        assert np.array_equal(resumed.order, full.order)
        assert resumed.scans == full.scans
        assert resumed.moves_applied == full.moves_applied
        # the modeled clock and the whole trace splice exactly: the
        # examined pair set per scan is a function of tour geometry
        # alone, so resumed scans cost exactly what they would have
        assert resumed.modeled_seconds == full.modeled_seconds
        assert resumed.trace == full.trace

    def test_engine_mismatch_rejected(self, tmp_path):
        c = coords_of(100, seed=10)
        path = tmp_path / "ck.json"
        self._search().run(c, max_scans=4, checkpoint_every=2,
                           checkpoint_path=path)
        with pytest.raises(CheckpointError, match="host_engine"):
            LocalSearch("gtx680-cuda", strategy="best").run(
                c, resume_from=path)

    @given(n=st.integers(16, 72), seed=st.integers(0, 10**4),
           cut=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_resume_identity_property(self, tmp_path_factory, n, seed, cut):
        c = random_coords(n, seed)
        full = self._search().run(c)
        path = tmp_path_factory.mktemp("subq-ck") / "ck.json"
        self._search().run(c, max_scans=cut, checkpoint_every=1,
                           checkpoint_path=path)
        assume(path.exists())  # descent may finish before the first write
        resumed = self._search().run(c, resume_from=path)
        assert resumed.final_length == full.final_length
        assert np.array_equal(resumed.order, full.order)
        assert resumed.modeled_seconds == full.modeled_seconds
        assert resumed.trace == full.trace
