"""Tests for the problem-division (tiling) scheme — Fig. 7/8."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.moves import best_move
from repro.core.pair_indexing import pair_count
from repro.core.tiling import TileSchedule, TwoOptKernelTiled, tiled_best_move
from repro.gpusim.executor import launch_kernel
from repro.gpusim.kernel import LaunchConfig


def random_coords(n, seed=0):
    return np.random.default_rng(seed).uniform(0, 10_000, (n, 2)).astype(np.float32)


class TestTileSchedule:
    def test_segments_partition_range(self):
        s = TileSchedule(100, 30)
        assert s.segments == [(0, 30), (30, 60), (60, 90), (90, 100)]

    def test_tile_count(self):
        s = TileSchedule(100, 30)
        assert s.num_tiles == 4 * 5 // 2

    def test_total_jobs_equals_pair_count(self):
        """The union of all tiles covers the job triangle exactly once."""
        for n, rs in [(50, 7), (100, 30), (237, 16), (1000, 999), (64, 64)]:
            s = TileSchedule(n, rs)
            assert s.total_jobs() == pair_count(n), (n, rs)

    @given(st.integers(4, 400), st.integers(2, 100))
    @settings(max_examples=60, deadline=None)
    def test_property_jobs_cover_triangle(self, n, rs):
        assert TileSchedule(n, rs).total_jobs() == pair_count(n)

    def test_explicit_pair_coverage(self):
        """Enumerate every (i, j) of every tile: exact cover, no overlap."""
        n, rs = 40, 11
        seen = set()
        for t in TileSchedule(n, rs).tiles():
            if t.intra:
                for j in range(t.a0, t.a1):
                    for i in range(t.a0, j):
                        assert (i, j) not in seen
                        seen.add((i, j))
            else:
                for i in range(t.a0, t.a1):
                    for j in range(t.b0, t.b1):
                        assert (i, j) not in seen
                        seen.add((i, j))
        assert seen == {(i, j) for j in range(n) for i in range(j)}

    def test_for_device_uses_paper_budget(self, gtx680):
        """48 kB / two float2 ranges -> ~3072-point ranges (§IV-B)."""
        s = TileSchedule.for_device(100_000, gtx680)
        assert 3000 <= s.range_size <= 3072

    def test_for_device_small_instance_single_segment(self, gtx680):
        s = TileSchedule.for_device(500, gtx680)
        assert s.num_segments == 1
        assert s.num_tiles == 1

    def test_bad_params(self):
        with pytest.raises(ValueError):
            TileSchedule(100, 1)
        with pytest.raises(ValueError):
            TileSchedule(2, 10)


class TestTiledKernel:
    @pytest.mark.parametrize("n,rs", [(60, 17), (120, 40), (200, 50)])
    def test_tiled_matches_monolithic(self, gtx680, small_launch, n, rs):
        c = random_coords(n, seed=n)
        mv = best_move(c)
        delta, i, j, _ = tiled_best_move(c, gtx680, small_launch, range_size=rs)
        assert (delta, i, j) == (mv.delta, mv.i, mv.j)

    @given(st.integers(12, 90), st.integers(5, 40), st.integers(0, 1000))
    @settings(max_examples=12, deadline=None)
    def test_property_tiled_matches_monolithic(self, n, rs, seed):
        from repro.gpusim.device import get_device

        c = random_coords(n, seed)
        mv = best_move(c)
        delta, i, j, _ = tiled_best_move(
            c, get_device("gtx680-cuda"), LaunchConfig(2, 32), range_size=rs
        )
        assert (delta, i, j) == (mv.delta, mv.i, mv.j)

    def test_launch_count_matches_schedule(self, gtx680, small_launch):
        c = random_coords(100, seed=1)
        _, _, _, stats = tiled_best_move(c, gtx680, small_launch, range_size=30)
        assert stats.launches == TileSchedule(100, 30).num_tiles

    def test_total_pair_checks(self, gtx680, small_launch):
        c = random_coords(90, seed=2)
        _, _, _, stats = tiled_best_move(c, gtx680, small_launch, range_size=25)
        assert stats.pair_checks == pair_count(90)

    def test_estimate_matches_instrumented(self, gtx680, small_launch):
        c = random_coords(80, seed=3)
        kernel = TwoOptKernelTiled()
        fields = ("flops", "special_ops", "pair_checks", "iterations",
                  "shared_requests", "atomics", "barriers")
        for tile in TileSchedule(80, 25).tiles():
            res = launch_kernel(kernel, gtx680, small_launch,
                                coords_ordered=c, tile=tile)
            est = kernel.estimate_stats(tile, small_launch, gtx680)
            for f in fields:
                assert getattr(res.stats, f) == getattr(est, f), (f, tile)

    def test_wrap_segment_successor(self, gtx680, small_launch):
        """The last tile needs position 0 as the successor of n-1; a move
        with j = n-1 must still produce exact deltas."""
        # construct coords where the best move involves the closing edge
        c = random_coords(50, seed=9)
        mv = best_move(c)
        delta, i, j, _ = tiled_best_move(c, gtx680, small_launch, range_size=13)
        assert (delta, i, j) == (mv.delta, mv.i, mv.j)
