"""Tests for the 2.5-opt SIMT kernel (§VII future work, built)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.moves import best_move, next_distances
from repro.core.two_half_opt import (
    TwoHalfOptKernel,
    TwoHalfOptSearch,
    best_two_h_move,
    two_h_deltas_for_pairs,
    _apply_coords,
)
from repro.gpusim.executor import launch_kernel
from repro.gpusim.kernel import LaunchConfig
from repro.heuristics.two_h_opt import TwoHMove, _apply
from repro.tsplib.generators import generate_instance


def coords_of(n, seed=0):
    return generate_instance(n, seed=seed).coords_float32()


def tour_len(c):
    return int(next_distances(c).sum())


class TestDeltas:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_variant_delta_matches_application(self, seed):
        """Apply each variant at random pairs; predicted == realized."""
        c = coords_of(60, seed=seed)
        rng = np.random.default_rng(seed)
        before = tour_len(c)
        for _ in range(40):
            i = int(rng.integers(0, 56))
            j = int(rng.integers(i + 2, 59))  # j > i+1, j < n-1
            d2, f, b = two_h_deltas_for_pairs(c, np.array([i]), np.array([j]))
            for kind, d in (("2opt", d2[0]), ("insert-forward", f[0]),
                            ("insert-backward", b[0])):
                if d >= 2**39:  # masked invalid
                    continue
                moved = _apply_coords(c, TwoHMove(kind, i, j, int(d)))
                assert tour_len(moved) - before == int(d), (kind, i, j)

    def test_2opt_variant_matches_moves_engine(self):
        c = coords_of(80, seed=3)
        dn = next_distances(c)
        from repro.core.moves import delta_for_pairs

        i = np.arange(0, 40)
        j = np.arange(40, 80)
        d2, _, _ = two_h_deltas_for_pairs(c, i, j, dn)
        assert np.array_equal(d2, delta_for_pairs(c, i, j, dn))

    def test_invalid_variants_masked(self):
        c = coords_of(30, seed=4)
        # j = i+1: insertion variants invalid
        _, f, b = two_h_deltas_for_pairs(c, np.array([5]), np.array([6]))
        assert f[0] >= 2**39 and b[0] >= 2**39
        # j = n-1: all insertions invalid
        _, f, b = two_h_deltas_for_pairs(c, np.array([5]), np.array([29]))
        assert f[0] >= 2**39 and b[0] >= 2**39


class TestReferenceVsKernel:
    @pytest.mark.parametrize("n,seed", [(40, 0), (100, 1), (200, 2)])
    def test_kernel_bit_exact(self, gtx680, small_launch, n, seed):
        c = coords_of(n, seed=seed)
        ref = best_two_h_move(c)
        res = launch_kernel(TwoHalfOptKernel(), gtx680, small_launch,
                            coords_ordered=c)
        assert res.output == ref

    @given(st.integers(12, 70), st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_property_kernel_matches_reference(self, n, seed):
        from repro.gpusim.device import get_device

        c = coords_of(n, seed=seed)
        ref = best_two_h_move(c)
        res = launch_kernel(TwoHalfOptKernel(), get_device("gtx680-cuda"),
                            LaunchConfig(2, 32), coords_ordered=c)
        assert res.output == ref

    def test_reference_blocked_consistency(self):
        c = coords_of(150, seed=5)
        a = best_two_h_move(c)
        b = best_two_h_move(c, block_cells=1024)
        assert a == b

    def test_best_at_least_as_good_as_2opt(self):
        """The 2.5-opt neighborhood contains the 2-opt one."""
        for seed in range(4):
            c = coords_of(90, seed=seed)
            assert best_two_h_move(c).delta <= best_move(c).delta

    def test_estimate_matches_instrumented(self, gtx680, small_launch):
        n = 100
        c = coords_of(n, seed=6)
        res = launch_kernel(TwoHalfOptKernel(), gtx680, small_launch,
                            coords_ordered=c)
        est = TwoHalfOptKernel().estimate_stats(n, small_launch, gtx680)
        for f in ("flops", "special_ops", "pair_checks", "iterations",
                  "global_load_transactions", "shared_requests", "atomics",
                  "barriers"):
            assert getattr(res.stats, f) == getattr(est, f), f


class TestTwoHalfOptSearch:
    def test_descent_reaches_25opt_minimum(self):
        c = coords_of(120, seed=7)
        res = TwoHalfOptSearch().run(c)
        assert res.final_length < res.initial_length
        # certify: no improving 2.5-opt move remains on the final tour
        final_coords = coords_of(120, seed=7)[res.order]
        assert best_two_h_move(final_coords).delta >= 0

    def test_not_systematically_worse_than_pure_2opt(self):
        """Individual trajectories land in different minima (±several %),
        but averaged over instances the richer neighborhood must not be
        systematically worse than pure 2-opt."""
        from repro.core.local_search import LocalSearch

        rels = []
        for seed in (8, 9, 10):
            c = coords_of(150, seed=seed)
            two = LocalSearch("gtx680-cuda", strategy="best").run(c)
            two_h = TwoHalfOptSearch().run(c)
            rels.append(
                (two_h.final_length - two.final_length) / two.final_length
            )
        assert sum(rels) / len(rels) <= 0.02

    def test_order_valid(self):
        c = coords_of(100, seed=9)
        res = TwoHalfOptSearch().run(c, max_moves=10)
        assert np.array_equal(np.sort(res.order), np.arange(100))

    def test_modeled_time_charged_per_launch(self):
        c = coords_of(80, seed=10)
        res = TwoHalfOptSearch().run(c, max_moves=5)
        assert res.modeled_seconds > 0
        assert res.stats.launches == res.moves_applied + (
            0 if res.moves_applied == 5 else 1
        )

    def test_size_guard(self, gtx680):
        search = TwoHalfOptSearch(gtx680)
        with pytest.raises(ValueError):
            search.run(np.zeros((7000, 2), dtype=np.float32))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            best_two_h_move(coords_of(10, seed=0)[:4])
