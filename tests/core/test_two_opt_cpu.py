"""Tests for the CPU baselines."""

import numpy as np
import pytest

from repro.core.moves import best_move, next_distances
from repro.core.two_opt_cpu import (
    cpu_best_move,
    cpu_scan_stats,
    sequential_two_opt,
    sequential_two_opt_sweep,
)
from repro.gpusim.stats import KernelStats


def random_coords(n, seed=0):
    return np.random.default_rng(seed).uniform(0, 10_000, (n, 2)).astype(np.float32)


def tour_len(c):
    return int(next_distances(c).sum())


class TestCpuBestMove:
    def test_move_identical_to_engine(self, i7cpu):
        c = random_coords(150, seed=1)
        mv, seconds = cpu_best_move(c, i7cpu)
        ref = best_move(c)
        assert (mv.delta, mv.i, mv.j) == (ref.delta, ref.i, ref.j)
        assert seconds > 0

    def test_fewer_threads_slower(self, i7cpu):
        c = random_coords(500, seed=2)
        _, t6 = cpu_best_move(c, i7cpu, threads=6)
        _, t1 = cpu_best_move(c, i7cpu, threads=1)
        assert t1 > 3 * t6

    def test_stats_accumulated(self, i7cpu):
        c = random_coords(100, seed=3)
        acc = KernelStats()
        cpu_best_move(c, i7cpu, stats=acc)
        assert acc.pair_checks == 100 * 99 // 2


class TestSequentialSweep:
    def test_gain_bookkeeping_exact(self):
        c = random_coords(80, seed=4)
        before = tour_len(c)
        c2, order, moves, gain = sequential_two_opt_sweep(c, np.arange(80))
        assert tour_len(c2) == before + gain
        assert gain <= 0 or moves == 0
        assert moves > 0  # random tour always improvable

    def test_coords_follow_order(self):
        c = random_coords(60, seed=5)
        c2, order, _, _ = sequential_two_opt_sweep(c, np.arange(60))
        assert np.array_equal(c2, c[order])

    def test_order_stays_permutation(self):
        c = random_coords(60, seed=6)
        _, order, _, _ = sequential_two_opt_sweep(c, np.arange(60))
        assert np.array_equal(np.sort(order), np.arange(60))

    def test_first_improvement_pivot_move_sequence(self):
        """The sweep must apply the *first* improving j of each row —
        exactly the move sequence of the scalar break-on-improvement
        double loop — not the row's best j."""
        from repro.core.moves import rounded_euclidean

        c = random_coords(40, seed=11)
        work = np.ascontiguousarray(c).copy()
        expected = []
        n = work.shape[0]
        for i in range(n - 2):
            dnext = next_distances(work)
            for j in range(i + 1, n):
                d_ij = int(rounded_euclidean(work[i][None, :], work[j][None, :])[0])
                d_i1j1 = int(rounded_euclidean(
                    work[i + 1][None, :], work[(j + 1) % n][None, :]
                )[0])
                delta = (d_ij + d_i1j1) - int(dnext[i]) - int(dnext[j])
                if delta < 0:
                    expected.append((i, j, delta))
                    work[i + 1 : j + 1] = work[i + 1 : j + 1][::-1]
                    break

        # replay the vectorized sweep and recover its applied (i, j, delta)
        c2, order, moves, gain = sequential_two_opt_sweep(c, np.arange(40))
        assert moves == len(expected)
        assert gain == sum(d for _, _, d in expected)
        assert np.array_equal(c2, work)

    def test_sweep_at_local_minimum_is_noop(self):
        theta = np.linspace(0, 2 * np.pi, 30, endpoint=False)
        c = np.stack([1000 * np.cos(theta), 1000 * np.sin(theta)], axis=1).astype(np.float32)
        c2, order, moves, gain = sequential_two_opt_sweep(c, np.arange(30))
        assert moves == 0 and gain == 0
        assert np.array_equal(order, np.arange(30))


class TestSequentialFull:
    def test_reaches_local_minimum(self):
        c = random_coords(70, seed=7)
        c2, order, total_moves = sequential_two_opt(c, np.arange(70))
        assert total_moves > 0
        # no improving move remains
        assert best_move(c2).delta >= 0

    def test_sequential_and_best_improvement_reach_similar_quality(self):
        """Different pivoting rules end in (possibly different) local
        minima of comparable quality — within a few percent."""
        from repro.core.local_search import LocalSearch

        c = random_coords(120, seed=8)
        seq_c, _, _ = sequential_two_opt(c.copy(), np.arange(120))
        res = LocalSearch("gtx680-cuda").run(c)
        a, b = tour_len(seq_c), res.final_length
        assert abs(a - b) / min(a, b) < 0.10

    def test_max_sweeps_guard(self):
        c = random_coords(50, seed=9)
        with pytest.raises(RuntimeError):
            sequential_two_opt(c, np.arange(50), max_sweeps=0)


class TestScanStats:
    def test_pair_count(self):
        s = cpu_scan_stats(100)
        assert s.pair_checks == 4950
        assert s.flops > 0 and s.special_ops > 0

    def test_flops_match_gpu_kernel_arithmetic(self):
        """CPU and GPU scans count identical arithmetic (same kernel)."""
        from repro.core.two_opt_gpu import TwoOptKernelOrdered
        from repro.gpusim.kernel import LaunchConfig
        from repro.gpusim.device import get_device

        n = 500
        cpu = cpu_scan_stats(n)
        gpu = TwoOptKernelOrdered().estimate_stats(
            n, LaunchConfig(4, 64), get_device("gtx680-cuda")
        )
        assert cpu.flops == gpu.flops
        assert cpu.special_ops == gpu.special_ops
