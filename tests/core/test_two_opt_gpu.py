"""Tests for the simulated GPU 2-opt kernels.

The central property: every kernel variant returns the *bit-identical*
best move found by the vectorized engine (same distances, same
tie-breaking) — the kernels differ only in where their bytes come from.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.moves import best_move
from repro.core.two_opt_gpu import (
    TwoOptKernelGlobal,
    TwoOptKernelOrdered,
    TwoOptKernelShared,
    decode_payload,
)
from repro.gpusim.executor import launch_kernel
from repro.gpusim.kernel import LaunchConfig


def random_coords(n, seed=0):
    return np.random.default_rng(seed).uniform(0, 10_000, (n, 2)).astype(np.float32)


class TestKernelEngineEquivalence:
    @pytest.mark.parametrize("n,seed", [(30, 0), (75, 1), (150, 2), (260, 3)])
    def test_ordered_kernel_matches_engine(self, gtx680, small_launch, n, seed):
        c = random_coords(n, seed)
        mv = best_move(c)
        res = launch_kernel(TwoOptKernelOrdered(), gtx680, small_launch,
                            coords_ordered=c)
        assert res.output == (mv.delta, mv.i, mv.j)

    @pytest.mark.parametrize("n,seed", [(40, 4), (120, 5)])
    def test_shared_kernel_matches_engine(self, gtx680, small_launch, n, seed):
        c = random_coords(n, seed)
        route = np.random.default_rng(seed + 1).permutation(n)
        # kernel operates in route order: engine ground truth on c[route]
        mv = best_move(c[route])
        res = launch_kernel(TwoOptKernelShared(), gtx680, small_launch,
                            coords=c, route=route)
        assert res.output == (mv.delta, mv.i, mv.j)

    @pytest.mark.parametrize("n,seed", [(40, 6), (120, 7)])
    def test_global_kernel_matches_engine(self, gtx680, small_launch, n, seed):
        c = random_coords(n, seed)
        route = np.random.default_rng(seed + 1).permutation(n)
        mv = best_move(c[route])
        res = launch_kernel(TwoOptKernelGlobal(), gtx680, small_launch,
                            coords=c, route=route)
        assert res.output == (mv.delta, mv.i, mv.j)

    @given(st.integers(10, 80), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_all_variants_agree(self, n, seed):
        from repro.gpusim.device import get_device

        gtx680 = get_device("gtx680-cuda")
        launch = LaunchConfig(2, 32)
        c = random_coords(n, seed)
        route = np.arange(n)
        r1 = launch_kernel(TwoOptKernelOrdered(), gtx680, launch, coords_ordered=c)
        r2 = launch_kernel(TwoOptKernelShared(), gtx680, launch, coords=c, route=route)
        r3 = launch_kernel(TwoOptKernelGlobal(), gtx680, launch, coords=c, route=route)
        assert r1.output == r2.output == r3.output

    def test_launch_geometry_does_not_change_result(self, gtx680):
        c = random_coords(200, seed=8)
        outs = set()
        for launch in (LaunchConfig(1, 32), LaunchConfig(4, 64), LaunchConfig(16, 128)):
            outs.add(
                launch_kernel(TwoOptKernelOrdered(), gtx680, launch,
                              coords_ordered=c).output
            )
        assert len(outs) == 1


class TestStatsCrossValidation:
    """Closed-form estimate_stats must match instrumented execution."""

    CHECK_FIELDS = (
        "flops", "special_ops", "pair_checks", "iterations",
        "global_load_transactions", "global_load_bytes",
        "shared_requests", "atomics", "barriers",
    )

    @pytest.mark.parametrize("n", [33, 100, 257])
    def test_ordered_estimates_exact(self, gtx680, small_launch, n):
        c = random_coords(n, seed=n)
        res = launch_kernel(TwoOptKernelOrdered(), gtx680, small_launch,
                            coords_ordered=c)
        est = TwoOptKernelOrdered().estimate_stats(n, small_launch, gtx680)
        for f in self.CHECK_FIELDS:
            assert getattr(res.stats, f) == getattr(est, f), f

    @pytest.mark.parametrize("n", [50, 130])
    def test_shared_estimates_exact_on_deterministic_fields(
        self, gtx680, small_launch, n
    ):
        c = random_coords(n, seed=n)
        route = np.arange(n)
        res = launch_kernel(TwoOptKernelShared(), gtx680, small_launch,
                            coords=c, route=route)
        est = TwoOptKernelShared().estimate_stats(n, small_launch, gtx680)
        for f in self.CHECK_FIELDS:
            assert getattr(res.stats, f) == getattr(est, f), f

    def test_ordered_conflict_estimate_is_close(self, gtx680, small_launch):
        n = 200
        c = random_coords(n, seed=1)
        res = launch_kernel(TwoOptKernelOrdered(), gtx680, small_launch,
                            coords_ordered=c)
        est = TwoOptKernelOrdered().estimate_stats(n, small_launch, gtx680)
        # conflicts are data-dependent; the float2 2-way estimate is an
        # upper bound within ~2x
        assert res.stats.bank_conflict_replays <= est.bank_conflict_replays
        assert res.stats.bank_conflict_replays >= 0.3 * est.bank_conflict_replays


class TestAccessPatternOrdering:
    """The optimization story of §IV, measured."""

    def test_global_kernel_moves_far_more_global_data(self, gtx680, small_launch):
        n = 200
        c = random_coords(n, seed=2)
        route = np.arange(n)
        g = launch_kernel(TwoOptKernelGlobal(), gtx680, small_launch,
                          coords=c, route=route)
        s = launch_kernel(TwoOptKernelShared(), gtx680, small_launch,
                          coords=c, route=route)
        assert g.stats.global_load_transactions > 10 * s.stats.global_load_transactions

    def test_ordered_kernel_needs_less_shared_traffic_than_shared(
        self, gtx680, small_launch
    ):
        n = 200
        c = random_coords(n, seed=3)
        route = np.arange(n)
        s = launch_kernel(TwoOptKernelShared(), gtx680, small_launch,
                          coords=c, route=route)
        o = launch_kernel(TwoOptKernelOrdered(), gtx680, small_launch,
                          coords_ordered=c)
        assert o.stats.shared_requests < s.stats.shared_requests
        # ordered also stages less (no route array)
        assert o.stats.global_load_bytes < s.stats.global_load_bytes

    def test_ordered_kernel_is_fastest(self, gtx680):
        """Modeled end-to-end: Opt 2 <= Opt 1 << naive (the paper's
        progression)."""
        n = 1500
        launch = LaunchConfig(8, 256)
        c = random_coords(n, seed=4)
        route = np.arange(n)
        t_global = launch_kernel(TwoOptKernelGlobal(), gtx680, launch,
                                 coords=c, route=route).seconds
        t_shared = launch_kernel(TwoOptKernelShared(), gtx680, launch,
                                 coords=c, route=route).seconds
        t_ordered = launch_kernel(TwoOptKernelOrdered(), gtx680, launch,
                                  coords_ordered=c).seconds
        assert t_ordered <= t_shared < t_global

    def test_shared_capacity_limits(self, gtx680):
        """§IV: 48 kB shared -> 6144 cities for the ordered kernel, fewer
        for the shared kernel (which also stages the route)."""
        assert TwoOptKernelOrdered().max_cities(gtx680) == 6144
        assert TwoOptKernelShared().max_cities(gtx680) < 6144


class TestDecodePayload:
    def test_roundtrip(self):
        assert decode_payload(0) == (0, 1)
        assert decode_payload(5) == (2, 3)
