"""Integration tests for the table/figure experiment drivers."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_block_size_ablation,
    run_kernel_variant_ablation,
    run_lut_vs_coords_ablation,
    run_strategy_ablation,
)
from repro.experiments.fig9_gflops import run_fig9, render as render9
from repro.experiments.fig10_speedup import run_fig10, render as render10
from repro.experiments.fig11_ils_convergence import run_fig11, render as render11
from repro.experiments.table1_memory import run_table1, render as render1
from repro.experiments.table2_timing import run_table2, render as render2


class TestTable1Driver:
    def test_runs_and_renders(self):
        rows = run_table1()
        out = render1(rows)
        assert "fnl4461" in out and "kroE100" in out


class TestTable2Driver:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2(max_solve_n=300, dlb_solve_n=800, max_table_n=1200)

    def test_row_set(self, rows):
        names = [r.name for r in rows]
        assert names[0] == "berlin52"
        assert "vm1084" in names

    def test_solved_rows_have_lengths(self, rows):
        solved = [r for r in rows if r.n <= 300]
        assert all(r.initial_length is not None for r in solved)
        assert all(r.optimized_length < r.initial_length for r in solved)
        assert all(r.method == "exact" for r in solved)

    def test_dlb_tier_rows_solved(self, rows):
        dlb = [r for r in rows if 300 < r.n <= 800]
        assert dlb and all(r.method == "dlb" for r in dlb)
        assert all(r.optimized_length < r.initial_length for r in dlb)

    def test_unsolved_rows_extrapolated(self, rows):
        unsolved = [r for r in rows if r.n > 800]
        assert all(r.method == "extrapolated" for r in unsolved)
        assert all(r.time_to_minimum_s is not None for r in unsolved)
        assert all(r.optimized_length is None for r in unsolved)

    def test_kernel_time_flat_for_small_instances(self, rows):
        """Table II's signature: berlin52 through pr1002 all cost ~the
        same, launch-bound time."""
        small = [r for r in rows if r.n <= 1002]
        times = [r.kernel_s for r in small]
        assert max(times) < 3 * min(times)

    def test_total_includes_transfers(self, rows):
        for r in rows:
            assert r.total_s == pytest.approx(r.kernel_s + r.h2d_s + r.d2h_s)

    def test_checks_per_second_increase_then_saturate(self, rows):
        checks = [r.checks_per_s for r in rows]
        assert checks[-1] > checks[0]

    def test_checks_per_second_is_kernel_only(self, rows):
        """Table II rates the scan kernel; the copy columns are separate."""
        from repro.core.pair_indexing import pair_count

        for r in rows:
            assert r.checks_per_s == pytest.approx(pair_count(r.n) / r.kernel_s)
            assert r.checks_per_s > pair_count(r.n) / r.total_s

    def test_render(self, rows):
        out = render2(rows)
        assert "berlin52" in out
        assert "~" in out  # extrapolation marker


class TestFig9Driver:
    @pytest.fixture(scope="class")
    def series(self):
        return run_fig9(sizes=(100, 1000, 5000, 20_000))

    def test_all_devices_present(self, series):
        assert len(series) == 8

    def test_gpu_curves_rise_and_plateau(self, series):
        gtx = next(s for s in series if s.device_key == "gtx680-cuda")
        assert gtx.gflops[0] < gtx.gflops[1] < gtx.gflops[2]
        # plateau: last two within 25%
        assert abs(gtx.gflops[3] - gtx.gflops[2]) / gtx.gflops[2] < 0.25

    def test_paper_peak_rates(self, series):
        """§V: 680 GFLOP/s (GTX 680 CUDA), 830 GFLOP/s (Radeon 7970)."""
        gtx = next(s for s in series if s.device_key == "gtx680-cuda")
        radeon = next(s for s in series if s.device_key == "hd7970-opencl")
        assert 600 <= gtx.peak <= 700
        assert 700 <= radeon.peak <= 860

    def test_cuda_above_opencl_on_same_silicon(self, series):
        cuda = next(s for s in series if s.device_key == "gtx680-cuda")
        ocl = next(s for s in series if s.device_key == "gtx680-opencl")
        assert all(a >= b for a, b in zip(cuda.gflops[1:], ocl.gflops[1:]))

    def test_cpus_far_below_gpus(self, series):
        xeon = next(s for s in series if s.device_key == "xeon-e5-2690x2-opencl")
        gtx = next(s for s in series if s.device_key == "gtx680-cuda")
        assert gtx.peak > 10 * xeon.peak

    def test_render(self, series):
        assert "GFLOP/s" in render9(series)


class TestFig10Driver:
    @pytest.fixture(scope="class")
    def series(self):
        return run_fig10(sizes=(100, 1000, 5000, 20_000))

    def test_speedup_grows_with_size(self, series):
        for s in series:
            sp = [p.speedup for p in s.points]
            assert sp[0] < sp[-1]

    def test_saturated_band_matches_paper(self, series):
        """Fig. 10 tops out around 20-25x for the fastest config."""
        best = max(s.max_speedup for s in series)
        assert 15 <= best <= 30

    def test_small_instances_near_parity(self, series):
        for s in series:
            assert s.points[0].speedup < 5

    def test_i7_baseline_gives_45x_band(self):
        """Abstract: 5-45x vs the 6-core i7."""
        series = run_fig10(devices=("gtx680-cuda",),
                           baseline="i7-3960x-opencl",
                           sizes=(500, 5000, 30_000))
        assert 35 <= series[0].max_speedup <= 50

    def test_render(self, series):
        assert "speedup" in render10(series).lower()


class TestFig11Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig11(n=250, iterations=4, seed=1)

    def test_all_devices_ran(self, result):
        assert set(result.curves) == {
            "gtx680-cuda", "i7-3960x-opencl", "cpu-sequential"
        }

    def test_same_final_quality_all_devices(self, result):
        lengths = set(result.final_lengths.values())
        assert len(lengths) == 1  # identical trajectory, device-independent

    def test_gpu_converges_faster(self, result):
        s_cpu = result.speedup("gtx680-cuda", "i7-3960x-opencl")
        s_seq = result.speedup("gtx680-cuda", "cpu-sequential")
        assert s_cpu and s_cpu > 3
        assert s_seq and s_seq > 20
        assert s_seq > s_cpu

    def test_ls_dominates(self, result):
        assert all(v > 0.9 for v in result.ils_share.values())

    def test_render(self, result):
        out = render11(result)
        assert "GPU convergence speedup" in out


class TestAblations:
    def test_kernel_variants_ordering(self):
        rows = run_kernel_variant_ablation(n=256)
        by_name = {r.kernel: r for r in rows}
        assert by_name["global (naive)"].seconds >= by_name["shared (Opt 1)"].seconds
        assert by_name["shared (Opt 1)"].seconds >= by_name["ordered (Opt 2)"].seconds
        # all find the same best move
        assert len({r.best_delta for r in rows}) == 1

    def test_block_size_sweep(self):
        rows = run_block_size_ablation(n=1500)
        assert len(rows) >= 4
        times = [r.seconds for r in rows]
        assert max(times) < 5 * min(times)  # all reasonable configs work

    def test_lut_vs_coords(self):
        rows = run_lut_vs_coords_ablation(sizes=(1000, 20_000, 50_000))
        # large instances: LUT stops fitting and is slower
        big = rows[-1]
        assert not big.lut_fits_device or big.lut_bytes > 4e9
        assert big.lut_seconds > big.coords_seconds

    def test_strategy_ablation(self):
        rows = run_strategy_ablation(n=300)
        by = {r.strategy: r for r in rows}
        assert by["batch"].scans < by["best"].scans
        rel = abs(by["batch"].final_length - by["best"].final_length)
        assert rel / by["best"].final_length < 0.05
