"""Tests for the future-work extension experiment drivers."""

import pytest

from repro.experiments.extensions import (
    render_breakdown,
    render_ihc_vs_ils,
    render_multigpu,
    render_pruned,
    run_ihc_vs_ils,
    run_multigpu_scaling,
    run_pruned_ablation,
    run_time_breakdown,
)


class TestMultiGpuScaling:
    def test_near_linear_scaling_large_instance(self):
        rows = run_multigpu_scaling(n=100_000, device_counts=(1, 2, 4, 8))
        by = {r.devices: r for r in rows}
        assert by[1].speedup == pytest.approx(1.0)
        assert by[8].speedup > 7.0
        assert by[8].efficiency > 0.85

    def test_executor_agrees_with_model(self):
        """The rows come from the real executor; the closed-form model
        must agree within 1% (the driver raises otherwise, but pin the
        reported numbers too)."""
        rows = run_multigpu_scaling(n=40_000, device_counts=(1, 2, 4))
        for r in rows:
            assert r.makespan_s == pytest.approx(r.model_makespan_s, rel=0.01)

    def test_render(self):
        rows = run_multigpu_scaling(n=30_000, device_counts=(1, 2))
        assert "multi-GPU" in render_multigpu(rows, 30_000)


class TestPrunedAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_pruned_ablation(n=500, ks=(4, 8))

    def test_full_row_first(self, rows):
        assert rows[0].k is None
        assert rows[0].quality_loss_pct == 0.0

    def test_pruned_scans_cheaper(self, rows):
        full = rows[0]
        for r in rows[1:]:
            assert r.pair_checks_per_scan < full.pair_checks_per_scan
            assert r.modeled_scan_s <= full.modeled_scan_s

    def test_quality_loss_small(self, rows):
        for r in rows[1:]:
            assert -1.0 < r.quality_loss_pct < 8.0

    def test_render(self, rows):
        assert "pruning" in render_pruned(rows, 500)


class TestIhcVsIls:
    def test_ils_competitive(self):
        rows = run_ihc_vs_ils(n=300, budget_s=0.02)
        by = {r.algorithm.split()[0]: r for r in rows}
        assert by["ILS"].best_length <= by["IHC"].best_length * 1.02

    def test_render(self):
        rows = run_ihc_vs_ils(n=200, budget_s=0.01)
        assert "IHC" in render_ihc_vs_ils(rows, 200, 0.01)


class TestTimeBreakdown:
    def test_overhead_dominates_small_compute_dominates_large(self):
        rows = run_time_breakdown(sizes=(100, 6000))
        small, large = rows
        assert small.overhead_pct > small.compute_pct
        assert large.compute_pct > large.overhead_pct
        assert large.compute_pct > 80

    def test_shares_bounded(self):
        for r in run_time_breakdown():
            for share in (r.compute_pct, r.memory_pct, r.shared_pct, r.overhead_pct):
                assert 0 <= share <= 100

    def test_size_guard(self):
        with pytest.raises(ValueError):
            run_time_breakdown(sizes=(10_000,))

    def test_render(self):
        assert "breakdown" in render_breakdown(run_time_breakdown())


class TestSmartSequential:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.extensions import run_smart_sequential

        return run_smart_sequential(n=800)

    def test_two_rows(self, rows):
        assert len(rows) == 2
        assert "brute-force" in rows[0].algorithm
        assert "don't-look" in rows[1].algorithm

    def test_smart_code_needs_far_fewer_checks(self, rows):
        brute, smart = rows
        # the candidate descent itself is orders of magnitude cheaper;
        # the convergence certificate (exhaustive confirming sweeps,
        # honestly charged n(n-1)/2 pair checks each) is budgeted
        # separately and dominates the smart total at this small n
        assert smart.checks - smart.certify_checks < brute.checks / 1000
        assert smart.certify_checks > 0
        assert smart.checks < brute.checks / 50

    def test_quality_comparable(self, rows):
        brute, smart = rows
        rel = abs(smart.final_length - brute.final_length) / brute.final_length
        assert rel < 0.03

    def test_paper_caveat_holds(self, rows):
        """§VI: the paper does NOT claim to beat clever sequential codes —
        and indeed the don't-look-bits descent on one scalar core
        undercuts the brute-force GPU descent in modeled time."""
        brute, smart = rows
        assert smart.modeled_seconds < brute.modeled_seconds

    def test_render(self, rows):
        from repro.experiments.extensions import render_smart_sequential

        assert "caveat" in render_smart_sequential(rows, 800)


class TestTwoHalfOptExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.extensions import run_two_half_opt

        return run_two_half_opt(n=200)

    def test_quality_within_band(self, rows):
        """Different greedy trajectories: endpoints agree within a few %.
        (Every 2.5-opt minimum is also a 2-opt minimum, but not the same
        one the pure 2-opt descent finds.)"""
        two, half = rows
        rel = abs(half.final_length - two.final_length) / two.final_length
        assert rel < 0.10

    def test_scan_costs_more_but_same_order(self, rows):
        two, half = rows
        assert half.scan_seconds >= two.scan_seconds * 0.9
        assert half.scan_seconds < two.scan_seconds * 5

    def test_render(self, rows):
        from repro.experiments.extensions import render_two_half_opt

        assert "2.5-opt" in render_two_half_opt(rows, 200)
