"""Tests for the §III metaheuristic-comparison experiment."""

import pytest

from repro.experiments.metaheuristics import (
    render_metaheuristics,
    run_metaheuristic_comparison,
)


@pytest.fixture(scope="module")
def rows():
    return run_metaheuristic_comparison(
        n=120, seed=0, aco_iterations=6, ga_generations=15, ils_iterations=4
    )


class TestMetaheuristicComparison:
    def test_five_rows(self, rows):
        assert len(rows) == 5
        names = [r.algorithm for r in rows]
        assert any("ILS" in x for x in names)
        assert any("ACO (pure)" in x for x in names)
        assert any("GA (pure)" in x for x in names)

    def test_memetic_beats_pure_within_family(self, rows):
        by = {r.algorithm: r for r in rows}
        assert (by["ACO + GPU 2-opt (memetic)"].best_length
                <= by["ACO (pure)"].best_length)
        assert (by["GA + GPU 2-opt (memetic)"].best_length
                <= by["GA (pure)"].best_length)

    def test_accelerated_rows_near_best(self, rows):
        """§III's point: every family embedding the 2-opt ends close to
        the best result; pure GA (few generations) lags far behind."""
        accel = [r for r in rows if r.uses_accelerated_2opt]
        assert all(r.excess_over_best_pct < 10 for r in accel)
        ga_pure = next(r for r in rows if r.algorithm == "GA (pure)")
        assert ga_pure.excess_over_best_pct > 10

    def test_best_marked_zero(self, rows):
        assert min(r.excess_over_best_pct for r in rows) == 0.0

    def test_render(self, rows):
        out = render_metaheuristics(rows, 120)
        assert "memetic" in out
        assert "ILS" in out
