"""Tests for the one-shot reproduction report."""

import pytest

from repro.experiments.report import ReportConfig, generate_report, write_report


@pytest.fixture(scope="module")
def small_report():
    cfg = ReportConfig(
        max_solve_n=150, fig11_n=150, fig11_iterations=2,
        multigpu_n=20_000, pruned_n=200, ihc_n=150, ihc_budget_s=0.005,
    )
    return generate_report(cfg)


class TestGenerateReport:
    def test_all_sections_present(self, small_report):
        for heading in ("# Reproduction report", "## Table I", "## Table II",
                        "## Fig. 9", "## Fig. 10", "## Fig. 11",
                        "## Ablations", "## Extensions"):
            assert heading in small_report

    def test_contains_instance_rows(self, small_report):
        assert "berlin52" in small_report
        assert "lrb744710" in small_report

    def test_contains_device_names(self, small_report):
        assert "GeForce GTX 680" in small_report
        assert "Xeon" in small_report

    def test_write_report(self, tmp_path, small_report):
        # write_report re-runs; use a minimal config for speed
        cfg = ReportConfig(
            max_solve_n=100, fig11_n=120, fig11_iterations=1,
            multigpu_n=20_000, pruned_n=150, ihc_n=120, ihc_budget_s=0.002,
        )
        path = tmp_path / "report.md"
        text = write_report(path, cfg)
        assert path.read_text() == text
        assert text.startswith("# Reproduction report")
