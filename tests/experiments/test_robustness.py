"""Tests for the seed-robustness experiment."""

import pytest

from repro.experiments.robustness import render_robustness, run_robustness


@pytest.fixture(scope="module")
def rows():
    return run_robustness(n=200, seeds=(0, 1, 2), distributions=("uniform", "geo"))


class TestRobustness:
    def test_one_row_per_distribution(self, rows):
        assert [r.distribution for r in rows] == ["uniform", "geo"]
        assert all(r.seeds == 3 for r in rows)

    def test_improvements_in_plausible_band(self, rows):
        for r in rows:
            assert 3 < r.improvement_mean_pct < 30

    def test_spread_is_tight(self, rows):
        """The justification for single-seed tables: CV stays small."""
        for r in rows:
            assert r.improvement_cv < 0.35

    def test_move_ratio_positive(self, rows):
        for r in rows:
            assert 0.02 < r.moves_per_city_mean < 1.0

    def test_render(self, rows):
        out = render_robustness(rows)
        assert "ROBUSTNESS" in out
        assert "±" in out
