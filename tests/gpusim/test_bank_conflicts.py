"""Tests for the shared-memory bank-conflict analyzer."""

import numpy as np

from repro.gpusim.bank_conflicts import conflict_free, count_bank_conflicts


class TestBankConflicts:
    def test_sequential_words_conflict_free(self):
        addrs = np.arange(32) * 4  # one word per bank
        assert count_bank_conflicts(addrs) == 0
        assert conflict_free(addrs)

    def test_broadcast_same_word_free(self):
        addrs = np.full(32, 64, dtype=np.int64)
        assert count_bank_conflicts(addrs) == 0

    def test_two_way_conflict_stride_2(self):
        # stride-2 words: lanes i and i+16 share bank (2i mod 32)
        addrs = np.arange(32) * 8
        assert count_bank_conflicts(addrs) == 1

    def test_32_way_conflict_stride_32(self):
        # all lanes hit bank 0 with distinct words: 31 replays
        addrs = np.arange(32) * 32 * 4
        assert count_bank_conflicts(addrs) == 31

    def test_mixed_broadcast_and_distinct(self):
        # 31 lanes broadcast word 0; 1 lane hits word 32 (same bank 0)
        addrs = np.zeros(32, dtype=np.int64)
        addrs[-1] = 32 * 4
        assert count_bank_conflicts(addrs) == 1

    def test_two_warps_independent(self):
        one_warp = np.arange(32) * 32 * 4      # 31 replays
        addrs = np.concatenate([one_warp, np.arange(32) * 4])  # + 0 replays
        assert count_bank_conflicts(addrs) == 31

    def test_active_mask(self):
        addrs = np.arange(32) * 32 * 4
        mask = np.zeros(32, dtype=bool)
        mask[:2] = True
        assert count_bank_conflicts(addrs, active_mask=mask) == 1

    def test_empty(self):
        assert count_bank_conflicts(np.array([], dtype=np.int64)) == 0

    def test_partial_warp(self):
        addrs = np.arange(7) * 4
        assert count_bank_conflicts(addrs) == 0

    def test_route_indirection_conflicts_nonzero(self):
        """A random permutation gather is (statistically) conflicted —
        the cost Optimization 2 removes."""
        rng = np.random.default_rng(1)
        perm = rng.permutation(1024)
        addrs = perm[:32] * 8  # float2 rows at random positions
        # not asserting an exact count; just that scattered float2 reads
        # are not free like ordered ones aren't guaranteed — check >= 0
        # and the typical case over many warps is conflicted:
        total = count_bank_conflicts(perm * 8)
        assert total > 0
