"""Tests for the coalescing analyzer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpusim.coalescing import (
    count_transactions,
    expected_transactions_random,
    transactions_for_sequential,
)


class TestCountTransactions:
    def test_fully_coalesced_float_warp(self):
        # 32 threads reading consecutive 4-byte words = one 128 B segment
        addrs = np.arange(32) * 4
        assert count_transactions(addrs) == 1

    def test_float2_warp_needs_two_segments(self):
        addrs = np.arange(32) * 8
        assert count_transactions(addrs) == 2

    def test_fully_scattered_warp(self):
        # each thread in its own segment
        addrs = np.arange(32) * 128
        assert count_transactions(addrs) == 32

    def test_broadcast_is_one_transaction(self):
        addrs = np.zeros(32, dtype=np.int64)
        assert count_transactions(addrs) == 1

    def test_two_warps_counted_separately(self):
        # both warps touch segment 0 -> 1 transaction each
        addrs = np.zeros(64, dtype=np.int64)
        assert count_transactions(addrs) == 2

    def test_partial_warp(self):
        addrs = np.arange(10) * 4
        assert count_transactions(addrs) == 1

    def test_active_mask_suppresses_lanes(self):
        addrs = np.arange(32) * 128
        mask = np.zeros(32, dtype=bool)
        mask[:4] = True
        assert count_transactions(addrs, active_mask=mask) == 4

    def test_all_inactive(self):
        addrs = np.arange(32) * 4
        assert count_transactions(addrs, active_mask=np.zeros(32, bool)) == 0

    def test_empty(self):
        assert count_transactions(np.array([], dtype=np.int64)) == 0

    def test_unaligned_straddle(self):
        # 32 words starting at byte 64: bytes 64..191 -> segments 0 and 1
        addrs = 64 + np.arange(32) * 4
        assert count_transactions(addrs) == 2


class TestClosedForms:
    def test_sequential_matches_analyzer_float(self):
        for n in (1, 17, 32, 100, 1024):
            addrs = np.arange(n) * 4
            assert transactions_for_sequential(n, 4) == count_transactions(addrs)

    def test_sequential_matches_analyzer_float2(self):
        for n in (32, 64, 100, 256):
            addrs = np.arange(n) * 8
            assert transactions_for_sequential(n, 8) == count_transactions(addrs)

    def test_sequential_zero(self):
        assert transactions_for_sequential(0, 4) == 0

    @given(st.integers(1, 2000))
    @settings(max_examples=30, deadline=None)
    def test_sequential_closed_form_property(self, n):
        addrs = np.arange(n) * 4
        assert transactions_for_sequential(n, 4) == count_transactions(addrs)

    def test_random_expectation_upper_bounded_by_warp_size(self):
        e = expected_transactions_random(32, 8, array_bytes=10**9)
        assert 31 <= e <= 32  # huge array: nearly one tx per lane

    def test_random_expectation_small_array(self):
        # array fits in one segment -> exactly one transaction per warp
        e = expected_transactions_random(32, 4, array_bytes=128)
        assert abs(e - 1.0) < 1e-9

    def test_random_expectation_statistical(self):
        """Monte-Carlo check of the closed form."""
        rng = np.random.default_rng(0)
        n_threads, itemsize, nbytes = 1024, 4, 64 * 1024
        n_items = nbytes // itemsize
        trials = []
        for _ in range(30):
            idx = rng.integers(0, n_items, n_threads)
            trials.append(count_transactions(idx * itemsize))
        measured = np.mean(trials)
        predicted = expected_transactions_random(n_threads, itemsize, nbytes)
        assert abs(measured - predicted) / predicted < 0.05
