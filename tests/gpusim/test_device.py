"""Tests for the device catalog."""

import pytest

from repro.errors import DeviceNotFoundError
from repro.gpusim.device import (
    CPUDeviceSpec,
    DEVICES,
    GPUDeviceSpec,
    get_device,
    list_devices,
)


class TestCatalog:
    def test_all_paper_devices_present(self):
        for key in (
            "gtx680-cuda", "gtx680-opencl", "hd7970-opencl", "hd7970ghz-opencl",
            "hd5970-opencl", "hd6990-opencl", "i7-3960x-opencl",
            "xeon-e5-2690x2-opencl", "opteron-32c-opencl", "cpu-sequential",
        ):
            assert key in DEVICES

    def test_unknown_device(self):
        with pytest.raises(DeviceNotFoundError):
            get_device("gtx9090")

    def test_list_matches_dict(self):
        assert set(list_devices()) == set(DEVICES)

    def test_gtx680_datasheet_values(self):
        d = get_device("gtx680-cuda")
        assert isinstance(d, GPUDeviceSpec)
        assert d.core_count == 1536
        assert d.warp_size == 32
        assert d.shared_mem_per_block == 48 * 1024
        # peak ~3.09 TFLOP/s
        assert 3000 < d.peak_gflops < 3200

    def test_gtx680_sustained_matches_paper(self):
        """Paper §V: recorded 680 GFLOP/s peak on GTX 680 with CUDA."""
        d = get_device("gtx680-cuda")
        assert abs(d.sustained_gflops - 680) < 20

    def test_hd7970_sustained_matches_paper(self):
        """Paper §V: 830 GFLOP/s on the Radeon in OpenCL."""
        d = get_device("hd7970-opencl")
        assert abs(d.sustained_gflops - 830) < 25

    def test_shared_memory_capacity_supports_6144_cities(self):
        """§IV: 48 kB shared memory limits one block to 6144 float2 coords."""
        d = get_device("gtx680-cuda")
        assert d.shared_mem_per_block // 8 == 6144

    def test_cpu_specs(self):
        c = get_device("i7-3960x-opencl")
        assert isinstance(c, CPUDeviceSpec)
        assert c.cores == 6
        assert not c.is_gpu

    def test_gpu_flag(self):
        assert get_device("gtx680-cuda").is_gpu

    def test_max_resident_threads(self):
        d = get_device("gtx680-cuda")
        assert d.max_resident_threads == 8 * 2048

    def test_gpus_faster_than_cpus_sustained(self):
        """Fig. 9 ordering: every GPU sustains more than every CPU."""
        gpu_rates = [d.sustained_gflops for d in DEVICES.values() if d.is_gpu]
        cpu_rates = [d.sustained_gflops for d in DEVICES.values() if not d.is_gpu]
        assert min(gpu_rates) > max(cpu_rates)

    def test_specs_frozen(self):
        d = get_device("gtx680-cuda")
        with pytest.raises(Exception):
            d.clock_ghz = 2.0  # type: ignore[misc]
