"""Tests for the kernel launch machinery."""

import numpy as np

from repro.gpusim.executor import launch_kernel
from repro.gpusim.kernel import Kernel, LaunchConfig
from repro.gpusim.stats import KernelStats


class DoublerKernel(Kernel):
    """Toy kernel: every thread doubles one array element."""

    name = "doubler"

    def run(self, ctx, *, data):
        g = ctx.global_array("data", data.copy())
        tid = ctx.thread_ids()
        n = g.data.shape[0]
        active = tid < n
        idx = np.where(active, tid, 0)
        vals = g.load(idx, active_mask=active)
        ctx.count_flops(1, active_threads=int(active.sum()))
        g.store(idx, vals * 2, active_mask=active)
        return g.data


class TestLaunchKernel:
    def test_output_correct(self, gtx680):
        data = np.arange(16, dtype=np.float32)
        res = launch_kernel(DoublerKernel(), gtx680, LaunchConfig(1, 32), data=data)
        assert np.array_equal(res.output, data * 2)

    def test_time_positive_and_breakdown(self, gtx680):
        res = launch_kernel(
            DoublerKernel(), gtx680, LaunchConfig(1, 32),
            data=np.ones(16, dtype=np.float32),
        )
        assert res.seconds > 0
        assert res.time.overhead >= gtx680.launch_overhead_s

    def test_stats_recorded(self, gtx680):
        res = launch_kernel(
            DoublerKernel(), gtx680, LaunchConfig(1, 32),
            data=np.ones(16, dtype=np.float32),
        )
        assert res.stats.flops == 16
        assert res.stats.launches == 1

    def test_external_accumulator(self, gtx680):
        acc = KernelStats()
        for _ in range(3):
            launch_kernel(
                DoublerKernel(), gtx680, LaunchConfig(1, 32),
                stats=acc, data=np.ones(8, dtype=np.float32),
            )
        assert acc.launches == 3
        assert acc.flops == 24

    def test_default_launch_config(self, gtx680):
        res = launch_kernel(DoublerKernel(), gtx680, data=np.ones(4, dtype=np.float32))
        assert res.stats.threads_launched >= 4
