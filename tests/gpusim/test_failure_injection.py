"""Failure-injection tests: the simulator must fail loudly and precisely.

A silent wrong answer from the GPU substitute would poison every
experiment, so every contract violation must surface as the documented
exception — never as a numpy broadcast error or a wrong result.
"""

import numpy as np
import pytest

from repro.core.tiling import Tile, TwoOptKernelTiled
from repro.core.two_opt_gpu import TwoOptKernelOrdered
from repro.errors import (
    LaunchConfigError,
    MemoryAccessError,
    SharedMemoryOverflowError,
)
from repro.gpusim.executor import launch_kernel
from repro.gpusim.kernel import KernelContext, LaunchConfig
from repro.gpusim.memory import GlobalArray, SharedArray
from repro.gpusim.stats import KernelStats


class TestSharedMemoryFaults:
    def test_kernel_exceeding_shared_capacity(self, gtx680, small_launch):
        """The ordered kernel on >6144 cities must refuse, not corrupt."""
        coords = np.zeros((7000, 2), dtype=np.float32)
        with pytest.raises(SharedMemoryOverflowError):
            launch_kernel(TwoOptKernelOrdered(), gtx680, small_launch,
                          coords_ordered=coords)

    def test_double_allocation_overflow(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(1, 32))
        ctx.alloc_shared("a", (3072, 2), np.float32)
        ctx.alloc_shared("b", (3072, 2), np.float32)  # exactly at 48 kB
        with pytest.raises(SharedMemoryOverflowError):
            ctx.alloc_shared("c", (1, 2), np.float32)


class TestMemoryFaults:
    def test_corrupt_tile_bounds_raise(self, gtx680, small_launch):
        """A tile pointing past the coordinate array must raise a
        memory-access error, mirroring an out-of-bounds device read."""
        coords = np.zeros((100, 2), dtype=np.float32)
        bad = Tile(a0=0, a1=50, b0=80, b1=120)  # b range exceeds n=100
        with pytest.raises(MemoryAccessError):
            launch_kernel(TwoOptKernelTiled(), gtx680, small_launch,
                          coords_ordered=coords, tile=bad)

    def test_global_array_negative_index(self):
        g = GlobalArray("g", np.zeros((10, 2), dtype=np.float32), KernelStats())
        with pytest.raises(MemoryAccessError):
            g.load(np.array([-5]))

    def test_shared_array_bounds(self):
        s = SharedArray("s", (8, 2), np.float32, KernelStats(),
                        capacity_bytes=1024)
        with pytest.raises(MemoryAccessError):
            s.store(np.array([8]), np.zeros((1, 2), dtype=np.float32))


class TestLaunchFaults:
    def test_zero_block(self):
        with pytest.raises(LaunchConfigError):
            LaunchConfig(4, 0)

    def test_occupancy_rejects_oversized_block(self, gtx680):
        kernel = TwoOptKernelOrdered()
        with pytest.raises(LaunchConfigError):
            kernel.occupancy_for(gtx680, LaunchConfig(1, 4096), n=100)

    def test_reduction_shape_mismatch(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(2, 32))
        with pytest.raises(LaunchConfigError):
            ctx.block_reduce_best(np.zeros(63), np.zeros(63))


class TestResultIntegrityUnderFaults:
    def test_failed_launch_leaves_no_partial_stats_in_accumulator(
        self, gtx680, small_launch
    ):
        """A crashed launch must not half-update a shared accumulator in a
        way that corrupts derived experiment numbers: the accumulator only
        receives the launch's stats after a successful run."""
        acc = KernelStats()
        coords = np.zeros((7000, 2), dtype=np.float32)
        with pytest.raises(SharedMemoryOverflowError):
            launch_kernel(TwoOptKernelOrdered(), gtx680, small_launch,
                          stats=acc, coords_ordered=coords)
        assert acc.pair_checks == 0
        assert acc.flops == 0
