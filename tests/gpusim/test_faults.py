"""Fault injection, retry/backoff, and recovery guarantees (tier 2).

The load-bearing claim: a sweep that loses a device, retries transient
kernel faults, or re-uploads a corrupted buffer finishes *bit-identical*
to the fault-free sweep, paying only modeled time.
"""

import numpy as np
import pytest

from repro.errors import (
    DeviceLostError,
    FaultSpecError,
    RetryExhaustedError,
)
from repro.gpusim.device import get_device
from repro.gpusim.executor import GPUExecutor
from repro.gpusim.faults import (
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    buffer_checksum,
)
from repro.gpusim.sharded import MultiDeviceExecutor
from repro.telemetry import Profiler
from repro.tsplib.generators import generate_instance

pytestmark = pytest.mark.fault_injection

POLICIES = ("round-robin", "lpt", "dynamic")


def _coords(n: int, seed: int = 0) -> np.ndarray:
    return generate_instance(n, seed=seed).coords_float32()


def _pool(size: int, **kw) -> MultiDeviceExecutor:
    return MultiDeviceExecutor(["gtx680-cuda"] * size, range_size=64, **kw)


class TestRecoveredSweepBitIdentity:
    """Dropout + retry recovery must not change the reduction result."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("pool_size", [2, 3, 4])
    def test_dropout_and_transient(self, policy, pool_size):
        c = _coords(220)
        ref = _pool(pool_size, policy=policy).run_sweep(c)
        faulty = _pool(
            pool_size, policy=policy, retry=RetryPolicy(max_attempts=3),
            faults=(f"dropout:device={pool_size - 1},after=1;"
                    f"rate:transient=0.6,seed=1"),
        )
        sweep = faulty.run_sweep(c)
        assert (sweep.delta, sweep.i, sweep.j) == (ref.delta, ref.i, ref.j)
        assert sweep.tiles_reassigned > 0
        assert sweep.retries > 0

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("pool_size", [2, 3, 4])
    def test_corruption_retry(self, policy, pool_size):
        c = _coords(220, seed=1)
        ref = _pool(pool_size, policy=policy).run_sweep(c)
        faulty = _pool(pool_size, policy=policy,
                       faults="corruption:device=1")
        sweep = faulty.run_sweep(c)
        assert (sweep.delta, sweep.i, sweep.j) == (ref.delta, ref.i, ref.j)
        assert sweep.fault_counters[1].corrupt_transfers == 1

    def test_random_rates_still_bit_identical(self):
        c = _coords(220, seed=2)
        ref = _pool(3).run_sweep(c)
        faulty = _pool(3, faults="rate:transient=0.5,corruption=0.2,seed=9")
        sweep = faulty.run_sweep(c)
        assert (sweep.delta, sweep.i, sweep.j) == (ref.delta, ref.i, ref.j)
        assert sweep.faults_injected > 0

    def test_acceptance_scenario(self):
        """ISSUE acceptance: 3 devices, one dropout + one transient fault."""
        c = _coords(300, seed=3)
        ref = _pool(3).run_sweep(c)
        ex = _pool(3, retry=RetryPolicy(max_attempts=3),
                   faults="dropout:device=2,after=1;transient:device=0,tile=0")
        with Profiler() as profiler:
            sweep = ex.run_sweep(c)
        assert (sweep.delta, sweep.i, sweep.j) == (ref.delta, ref.i, ref.j)
        # retry/backoff booked on the modeled clock
        assert sweep.makespan > ref.makespan
        # per-device counters exposed
        assert ex.fault_counters[0].retries == 1
        assert ex.fault_counters[0].backoff_seconds > 0
        assert ex.fault_counters[2].dropouts == 1
        assert sweep.tiles_reassigned > 0
        counters = profiler.metrics.snapshot()["counters"]
        assert counters["gpusim.fault.dropouts.gtx680-cuda#2"] == 1
        assert counters["gpusim.fault.retries.gtx680-cuda#0"] == 1
        assert counters["gpusim.fault.tiles_reassigned"] > 0


class TestDeterminism:
    def test_same_plan_same_faults(self):
        c = _coords(220, seed=4)
        runs = []
        for _ in range(2):
            ex = _pool(3, faults="rate:transient=0.4,seed=11")
            sweep = ex.run_sweep(c)
            runs.append((sweep.delta, sweep.i, sweep.j, sweep.faults_injected,
                         sweep.retries, sweep.makespan))
        assert runs[0] == runs[1]
        assert runs[0][3] > 0

    def test_dead_device_stays_dead_across_sweeps(self):
        c = _coords(220, seed=5)
        ex = _pool(2, faults="dropout:device=1,after=0")
        first = ex.run_sweep(c)
        second = ex.run_sweep(c)
        assert first.fault_counters[1].dropouts == 1
        # already dead: no second dropout, survivor carries the sweep
        assert second.fault_counters[1].dropouts == 0
        ref = _pool(2).run_sweep(c)
        assert (second.delta, second.i, second.j) == (ref.delta, ref.i, ref.j)


class TestFailurePaths:
    def test_retry_exhausted(self):
        ex = _pool(2, retry=RetryPolicy(max_attempts=2),
                   faults="transient:device=0,tile=0,count=2")
        with pytest.raises(RetryExhaustedError):
            ex.run_sweep(_coords(220))

    def test_whole_pool_lost(self):
        ex = _pool(2, faults="dropout:device=0,after=0;dropout:device=1,after=0")
        with pytest.raises(DeviceLostError):
            ex.run_sweep(_coords(220))

    def test_corruption_beyond_budget(self):
        ex = _pool(2, retry=RetryPolicy(max_attempts=2),
                   faults="corruption:device=0,count=5")
        with pytest.raises(RetryExhaustedError):
            ex.run_sweep(_coords(220))


class TestGPUExecutor:
    def test_transfer_retry_charges_clock(self):
        device = get_device("gtx680-cuda")
        plan = FaultPlan.parse("corruption:device=0")
        inj = plan.injector()
        inj.begin_sweep()
        clean = GPUExecutor(device)
        faulty = GPUExecutor(device, retry=RetryPolicy(max_attempts=3),
                             injector=inj)
        c = _coords(100)
        a = clean.stage_upload(c)
        b = faulty.stage_upload(c)
        assert np.array_equal(a, b)
        assert buffer_checksum(b) == buffer_checksum(c)
        assert faulty.clock > clean.clock  # extra transfer + backoff
        assert faulty.counters.corrupt_transfers == 1

    def test_dead_executor_refuses_launches(self):
        device = get_device("gtx680-cuda")
        inj = FaultPlan.parse("dropout:device=0,after=0").injector()
        inj.begin_sweep()
        ex = GPUExecutor(device, injector=inj)
        assert ex.check_dropout(0)
        assert not ex.alive
        with pytest.raises(DeviceLostError):
            ex.stage_upload(_coords(50))


class TestSpecParsing:
    def test_round_trips_the_readme_example(self):
        plan = FaultPlan.parse(
            "transient:device=0,tile=3;dropout:device=2,after=5;"
            "corruption:device=1,count=2;rate:transient=0.01,seed=7")
        assert plan.events[0] == FaultEvent("transient", 0, tile=3)
        assert plan.events[1] == FaultEvent("dropout", 2, after=5)
        assert plan.events[2] == FaultEvent("corruption", 1, count=2)
        assert plan.transient_rate == 0.01
        assert plan.seed == 7

    @pytest.mark.parametrize("spec", [
        "",
        "   ",
        "meteor:device=0",
        "transient:device=0",            # missing tile
        "dropout:device=1",              # missing after
        "transient:device=0,tile=x",     # bad int
        "transient:device=0,tile=1,color=red",
        "rate:transient=2.0",            # out of range
        "transient:tile",                # not key=value
    ])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        p = RetryPolicy(base_backoff_s=1e-3, multiplier=2.0, max_backoff_s=3e-3)
        assert p.backoff_s(0) == pytest.approx(1e-3)
        assert p.backoff_s(1) == pytest.approx(2e-3)
        assert p.backoff_s(5) == pytest.approx(3e-3)  # capped


class TestSolverIntegration:
    def test_solve_under_faults_matches_fault_free(self):
        from repro.core.solver import TwoOptSolver

        inst = generate_instance(200, seed=0)
        ref = TwoOptSolver(["gtx680-cuda"] * 3, strategy="best",
                           mode="simulate").solve(inst)
        res = TwoOptSolver(
            ["gtx680-cuda"] * 3, strategy="best",
            faults="rate:transient=0.2,seed=5",
        ).solve(inst)
        assert res.final_length == ref.final_length
        assert np.array_equal(res.tour.order, ref.tour.order)
        # the recovery overhead lands on the modeled clock
        assert res.search.modeled_seconds > ref.search.modeled_seconds

    def test_faults_require_best_strategy_and_simulate(self):
        from repro.core.local_search import LocalSearch
        from repro.errors import SolverError

        with pytest.raises(SolverError, match="strategy"):
            LocalSearch(["gtx680-cuda"], backend="multi-gpu", mode="simulate",
                        strategy="batch", faults="corruption:device=0")
        with pytest.raises(SolverError, match="multi-gpu"):
            LocalSearch("gtx680-cuda", mode="simulate",
                        faults="corruption:device=0")


class TestFaultRecoveryExperiment:
    def test_small_sweep_recovers_everything(self):
        from repro.experiments.fault_recovery import run_fault_recovery

        rows = run_fault_recovery(n=300, transient_rates=(0.2,),
                                  attempts=(3,))
        assert rows
        assert all(r.completed and r.identical for r in rows)
        dropout = [r for r in rows if r.scenario == "dropout"]
        assert dropout and dropout[0].tiles_reassigned > 0
        assert all(r.overhead_percent >= 0 for r in rows)
