"""Tests for LaunchConfig and KernelContext."""

import numpy as np
import pytest

from repro.errors import LaunchConfigError
from repro.gpusim.kernel import (
    FLOPS_PER_DISTANCE,
    KernelContext,
    LaunchConfig,
    SPECIAL_PER_DISTANCE,
)


class TestLaunchConfig:
    def test_total_threads(self):
        assert LaunchConfig(28, 1024).total_threads == 28 * 1024

    def test_positive_dims_required(self):
        with pytest.raises(LaunchConfigError):
            LaunchConfig(0, 64)

    def test_default_for_gtx680_is_paper_config(self, gtx680):
        lc = LaunchConfig.default_for(gtx680)
        assert lc.block_dim == 1024
        assert lc.grid_dim >= 16

    def test_default_respects_block_limit(self, hd7970):
        lc = LaunchConfig.default_for(hd7970)
        assert lc.block_dim <= hd7970.max_threads_per_block


class TestKernelContext:
    def test_thread_geometry(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(2, 4))
        assert list(ctx.thread_ids()) == list(range(8))
        assert list(ctx.block_ids()) == [0, 0, 0, 0, 1, 1, 1, 1]
        assert list(ctx.lane_ids()) == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_launch_counted(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(2, 4))
        assert ctx.stats.launches == 1
        assert ctx.stats.threads_launched == 8

    def test_shared_allocation_budget(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(1, 32))
        ctx.alloc_shared("a", (4000, 2), np.float32)  # 32 000 B
        with pytest.raises(Exception):
            ctx.alloc_shared("b", (4000, 2), np.float32)  # would exceed 48 kB

    def test_euclidean_distance_matches_listing1(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(1, 32))
        a = np.array([[0.0, 0.0], [0.0, 0.0]], dtype=np.float32)
        b = np.array([[3.0, 4.0], [1.0, 1.0]], dtype=np.float32)
        d = ctx.euclidean_distance(a, b)
        assert list(d) == [5, 1]

    def test_euclidean_distance_accounting(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(1, 32))
        a = np.zeros((10, 2), dtype=np.float32)
        ctx.euclidean_distance(a, a)
        assert ctx.stats.flops == 10 * FLOPS_PER_DISTANCE
        assert ctx.stats.special_ops == 10 * SPECIAL_PER_DISTANCE

    def test_sync_counts_per_block(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(7, 32))
        ctx.sync_threads()
        assert ctx.stats.barriers == 7

    def test_cooperative_load_charges_per_block(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(4, 64))
        g = ctx.global_array("src", np.zeros((100, 2), dtype=np.float32))
        sh = ctx.alloc_shared("dst", (100, 2), np.float32)
        ctx.cooperative_load(g, sh, 100)
        # every one of the 4 blocks reads all 100 rows
        assert ctx.stats.global_load_bytes == 4 * 100 * 8
        assert np.array_equal(sh.data, g.data)


class TestBlockReduceBest:
    def test_finds_global_minimum(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(2, 32))
        values = np.arange(64, 0, -1)  # min 1 at last lane
        payload = np.arange(64) * 10
        v, p = ctx.block_reduce_best(values, payload)
        assert v == 1
        assert p == 630

    def test_tie_breaks_to_lowest_payload(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(2, 32))
        values = np.zeros(64)
        payload = np.arange(64)[::-1].copy()
        _, p = ctx.block_reduce_best(values, payload)
        assert p == 0

    def test_accounting(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(2, 32))
        before = ctx.stats.atomics
        ctx.block_reduce_best(np.zeros(64), np.zeros(64, dtype=int))
        assert ctx.stats.atomics == before + 2  # one per block
        assert ctx.stats.barriers > 0

    def test_shape_mismatch_rejected(self, gtx680):
        ctx = KernelContext(gtx680, LaunchConfig(2, 32))
        with pytest.raises(LaunchConfigError):
            ctx.block_reduce_best(np.zeros(10), np.zeros(10))
