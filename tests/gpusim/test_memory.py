"""Tests for instrumented global/shared memory."""

import numpy as np
import pytest

from repro.errors import MemoryAccessError, SharedMemoryOverflowError
from repro.gpusim.memory import GlobalArray, SharedArray
from repro.gpusim.stats import KernelStats


def make_global(n=128, cols=2):
    stats = KernelStats()
    data = np.arange(n * cols, dtype=np.float32).reshape(n, cols)
    return GlobalArray("g", data, stats), stats


def make_shared(n=128, cols=2, capacity=48 * 1024):
    stats = KernelStats()
    return SharedArray("s", (n, cols), np.float32, stats, capacity_bytes=capacity), stats


class TestGlobalArray:
    def test_load_returns_rows(self):
        g, _ = make_global()
        out = g.load(np.array([0, 5]))
        assert np.array_equal(out, g.data[[0, 5]])

    def test_load_counts_transactions_and_bytes(self):
        g, stats = make_global()
        g.load(np.arange(32))
        assert stats.global_load_transactions == 2  # 32 float2 rows = 256 B
        assert stats.global_load_bytes == 32 * 8

    def test_scattered_load_costs_more(self):
        g, s1 = make_global(4096)
        g.load(np.arange(32))
        seq_tx = s1.global_load_transactions
        g2, s2 = make_global(4096)
        g2.load(np.arange(32) * 128)  # widely scattered
        assert s2.global_load_transactions > seq_tx

    def test_store_writes_and_counts(self):
        g, stats = make_global()
        g.store(np.array([1, 2]), np.zeros((2, 2), dtype=np.float32))
        assert np.all(g.data[1:3] == 0)
        assert stats.global_store_transactions >= 1
        assert stats.global_store_bytes == 16

    def test_masked_store_only_touches_active(self):
        g, _ = make_global()
        before = g.data[2].copy()
        g.store(np.array([1, 2]), np.zeros((2, 2), np.float32),
                active_mask=np.array([True, False]))
        assert np.all(g.data[1] == 0)
        assert np.array_equal(g.data[2], before)

    def test_out_of_bounds_rejected(self):
        g, _ = make_global(16)
        with pytest.raises(MemoryAccessError):
            g.load(np.array([16]))
        with pytest.raises(MemoryAccessError):
            g.load(np.array([-1]))


class TestSharedArray:
    def test_capacity_enforced(self):
        with pytest.raises(SharedMemoryOverflowError):
            make_shared(n=10_000, capacity=48 * 1024)

    def test_load_store_round_trip(self):
        s, _ = make_shared()
        s.store(np.array([3]), np.array([[1.5, 2.5]], dtype=np.float32))
        assert np.array_equal(s.load(np.array([3]))[0], [1.5, 2.5])

    def test_requests_counted(self):
        s, stats = make_shared()
        s.load(np.arange(32))
        # one warp x float2 (2 words) = 2 requests
        assert stats.shared_requests == 2

    def test_conflicts_counted_for_strided_access(self):
        s, stats = make_shared(n=2048, cols=1)
        s.load(np.arange(32) * 32)  # all same bank
        assert stats.bank_conflict_replays == 31

    def test_bounds_checked(self):
        s, _ = make_shared(16)
        with pytest.raises(MemoryAccessError):
            s.load(np.array([99]))

    def test_fill_direct_no_accounting(self):
        s, stats = make_shared()
        s.fill_direct(np.ones((4, 2), dtype=np.float32))
        assert stats.shared_requests == 0
        assert np.all(s.data[:4] == 1)
