"""Tests for the multi-device (multi-GPU) sweep model."""

import pytest

from repro.errors import GpuSimError
from repro.gpusim.multidevice import (
    multi_device_sweep,
    strong_scaling,
)


class TestMultiDeviceSweep:
    def test_single_device_baseline(self):
        sweep = multi_device_sweep(20_000, ["gtx680-cuda"])
        assert len(sweep.loads) == 1
        assert sweep.makespan > 0
        assert sweep.efficiency == pytest.approx(1.0)

    def test_two_devices_halve_makespan(self):
        one = multi_device_sweep(50_000, ["gtx680-cuda"])
        two = multi_device_sweep(50_000, ["gtx680-cuda"] * 2)
        assert two.speedup_over(one) == pytest.approx(2.0, rel=0.1)

    def test_all_tiles_assigned(self):
        from repro.core.tiling import TileSchedule
        from repro.gpusim.device import get_device

        n = 30_000
        sweep = multi_device_sweep(n, ["gtx680-cuda"] * 3)
        expected = TileSchedule.for_device(n, get_device("gtx680-cuda")).num_tiles
        assert sum(l.tiles for l in sweep.loads) == expected

    @pytest.mark.parametrize("policy", ["round-robin", "lpt", "dynamic"])
    def test_policies_conserve_work(self, policy):
        one = multi_device_sweep(30_000, ["gtx680-cuda"], policy=policy)
        four = multi_device_sweep(30_000, ["gtx680-cuda"] * 4, policy=policy)
        assert four.total_work == pytest.approx(one.total_work, rel=1e-9)

    def test_lpt_never_worse_than_round_robin(self):
        rr = multi_device_sweep(40_000, ["gtx680-cuda"] * 4, policy="round-robin")
        lpt = multi_device_sweep(40_000, ["gtx680-cuda"] * 4, policy="lpt")
        assert lpt.makespan <= rr.makespan * 1.001

    def test_heterogeneous_devices(self):
        """A slower second GPU still helps, but sublinearly."""
        fast_only = multi_device_sweep(40_000, ["hd7970ghz-opencl"])
        mixed = multi_device_sweep(
            40_000, ["hd7970ghz-opencl", "hd5970-opencl"], policy="dynamic"
        )
        assert mixed.makespan < fast_only.makespan
        assert mixed.speedup_over(fast_only) < 2.0

    def test_rejects_empty_and_cpu(self):
        with pytest.raises(GpuSimError):
            multi_device_sweep(10_000, [])
        with pytest.raises(GpuSimError):
            multi_device_sweep(10_000, ["i7-3960x-opencl"])

    def test_unknown_policy(self):
        with pytest.raises(GpuSimError):
            multi_device_sweep(10_000, ["gtx680-cuda"], policy="magic")  # type: ignore[arg-type]


class TestStrongScaling:
    def test_speedups_monotone_and_bounded(self):
        results = strong_scaling(80_000, device_counts=(1, 2, 4, 8))
        single = results[0][1]
        speedups = [single.makespan / sweep.makespan for _, sweep in results]
        assert speedups[0] == pytest.approx(1.0)
        assert all(a < b for a, b in zip(speedups, speedups[1:]))
        for (count, _), sp in zip(results, speedups):
            assert sp <= count + 1e-9

    def test_efficiency_high_for_large_problem(self):
        results = strong_scaling(100_000, device_counts=(1, 8))
        eight = dict(results)[8]
        assert eight.efficiency > 0.9

    def test_small_problem_scales_worse(self):
        """Few tiles -> poor balance: efficiency drops for small n."""
        big = dict(strong_scaling(100_000, device_counts=(1, 8)))[8]
        small = dict(strong_scaling(10_000, device_counts=(1, 8)))[8]
        assert small.efficiency < big.efficiency
