"""Tests for the occupancy calculator."""

import pytest

from repro.errors import LaunchConfigError
from repro.gpusim.occupancy import occupancy


class TestOccupancy:
    def test_full_occupancy_1024_blocks(self, gtx680):
        r = occupancy(gtx680, block_dim=1024, grid_dim=64)
        # 2048 threads/SM / 1024 = 2 blocks/SM, 8 SMs = 16384 resident
        assert r.blocks_per_sm == 2
        assert r.resident_threads == 16384
        assert r.occupancy == 1.0

    def test_grid_limited(self, gtx680):
        r = occupancy(gtx680, block_dim=1024, grid_dim=4)
        assert r.resident_threads == 4096
        assert r.limited_by == "grid"
        assert r.occupancy == 0.25

    def test_shared_memory_limits_blocks(self, gtx680):
        # a block using all 48 kB: one block per SM
        r = occupancy(gtx680, block_dim=256, grid_dim=1000,
                      shared_bytes_per_block=48 * 1024)
        assert r.blocks_per_sm == 1
        assert r.limited_by in ("shared", "grid")
        assert r.resident_threads == 8 * 256

    def test_small_blocks_limited_by_block_slots(self, gtx680):
        r = occupancy(gtx680, block_dim=32, grid_dim=10_000)
        # 16 blocks/SM x 32 threads = 512/SM, not 2048
        assert r.blocks_per_sm == 16
        assert r.occupancy == 512 / 2048

    def test_block_too_large(self, gtx680):
        with pytest.raises(LaunchConfigError):
            occupancy(gtx680, block_dim=2048, grid_dim=1)

    def test_shared_request_too_large(self, gtx680):
        with pytest.raises(LaunchConfigError):
            occupancy(gtx680, block_dim=64, grid_dim=1,
                      shared_bytes_per_block=64 * 1024)

    def test_nonpositive_dims(self, gtx680):
        with pytest.raises(LaunchConfigError):
            occupancy(gtx680, block_dim=0, grid_dim=1)
        with pytest.raises(LaunchConfigError):
            occupancy(gtx680, block_dim=64, grid_dim=0)

    def test_hd7970_block_limit(self, hd7970):
        r = occupancy(hd7970, block_dim=256, grid_dim=10_000)
        assert r.occupancy <= 1.0
        assert r.resident_threads > 0
