"""Tests for the sharded multi-device executor."""

import numpy as np
import pytest

from repro.core.tiling import tiled_best_move
from repro.errors import GpuSimError
from repro.gpusim.device import GPUDeviceSpec, get_device
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.multidevice import multi_device_sweep
from repro.gpusim.sharded import MultiDeviceExecutor
from repro.gpusim.stats import KernelStats
from repro.telemetry import Profiler
from repro.tsplib.generators import generate_instance

POLICIES = ("round-robin", "lpt", "dynamic")


def _tiny_gpu(name: str, shared_kb: int, clock_ghz: float = 1.0) -> GPUDeviceSpec:
    """A custom GPU spec with a small shared-memory budget (many tiles)."""
    return GPUDeviceSpec(
        name=name, api="CUDA", clock_ghz=clock_ghz, lo_efficiency=0.2,
        mem_bandwidth_gbps=100.0, mem_latency_ns=350.0,
        sm_count=4, cores_per_sm=64,
        shared_mem_per_sm=shared_kb * 1024,
        shared_mem_per_block=shared_kb * 1024,
        max_threads_per_block=256,
    )


def _coords(n: int, seed: int) -> np.ndarray:
    return generate_instance(n, seed=seed).coords_float32()


class TestBitIdentity:
    """The sharded reduction must match the single-device tiled sweep."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("pool_size", [1, 2, 3, 4])
    def test_matches_tiled_best_move(self, policy, pool_size):
        device = get_device("gtx680-cuda")
        launch = LaunchConfig.default_for(device)
        executor = MultiDeviceExecutor(
            ["gtx680-cuda"] * pool_size, policy=policy, range_size=64,
        )
        for seed in (0, 1, 2):
            c = _coords(220, seed)
            ref_delta, ref_i, ref_j, _ = tiled_best_move(
                c, device, launch, range_size=64
            )
            sweep = executor.run_sweep(c)
            assert (sweep.delta, sweep.i, sweep.j) == (ref_delta, ref_i, ref_j)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_heterogeneous_shared_memory_budgets(self, policy):
        """Pool members with different shared budgets still agree exactly."""
        device = get_device("gtx680-cuda")
        launch = LaunchConfig.default_for(device)
        pool = [_tiny_gpu("big", 4, 1.2), _tiny_gpu("small", 2, 0.8)]
        executor = MultiDeviceExecutor(pool, policy=policy)
        for seed in (5, 6):
            c = _coords(300, seed)
            ref_delta, ref_i, ref_j, _ = tiled_best_move(c, device, launch)
            sweep = executor.run_sweep(c)
            assert (sweep.delta, sweep.i, sweep.j) == (ref_delta, ref_i, ref_j)

    def test_local_minimum_agrees_with_single_device(self):
        # a convex-position tour in order has no improving 2-opt move;
        # the sweep must still report the same (non-improving) best pair
        t = np.linspace(0.0, 2 * np.pi, 40, endpoint=False)
        c = np.stack([1000 + 900 * np.cos(t), 1000 + 900 * np.sin(t)],
                     axis=1).astype(np.float32)
        device = get_device("gtx680-cuda")
        launch = LaunchConfig.default_for(device)
        ref_delta, ref_i, ref_j, _ = tiled_best_move(c, device, launch,
                                                     range_size=16)
        executor = MultiDeviceExecutor(["gtx680-cuda"] * 2, range_size=16)
        sweep = executor.run_sweep(c)
        assert (sweep.delta, sweep.i, sweep.j) == (ref_delta, ref_i, ref_j)
        assert sweep.delta >= 0


class TestPlan:
    def test_all_tiles_assigned_once(self):
        executor = MultiDeviceExecutor(["gtx680-cuda"] * 3)
        plan = executor.plan(30_000)
        assigned = sorted(t for tiles in plan.assignment for t in tiles)
        assert assigned == list(range(executor.schedule(30_000).num_tiles))

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("pool_size", [1, 2, 4])
    def test_homogeneous_plan_matches_model(self, policy, pool_size):
        """On replicated devices the plan reproduces the closed-form model."""
        executor = MultiDeviceExecutor(["gtx680-cuda"] * pool_size,
                                       policy=policy)
        plan = executor.plan(30_000)
        model = multi_device_sweep(30_000, ["gtx680-cuda"] * pool_size,
                                   policy=policy)
        assert plan.makespan == pytest.approx(model.makespan, rel=1e-12)
        assert plan.total_work == pytest.approx(model.total_work, rel=1e-12)

    def test_heterogeneous_pool_uses_min_capacity_schedule(self):
        """The common schedule must fit the smallest pool member."""
        pool = [_tiny_gpu("big", 8), _tiny_gpu("small", 2)]
        executor = MultiDeviceExecutor(pool)
        schedule = executor.schedule(2000)
        from repro.core.tiling import TileSchedule

        assert schedule.range_size == TileSchedule.for_device(
            2000, pool[1]
        ).range_size

    def test_plan_cached(self):
        executor = MultiDeviceExecutor(["gtx680-cuda"] * 2)
        assert executor.plan(10_000) is executor.plan(10_000)

    def test_run_sweep_busy_close_to_plan(self):
        """Instrumented execution tracks the closed-form plan closely."""
        executor = MultiDeviceExecutor(["gtx680-cuda"] * 2, range_size=64)
        c = _coords(400, 7)
        sweep = executor.run_sweep(c)
        plan = executor.plan(400)
        assert sweep.makespan == pytest.approx(plan.makespan, rel=0.05)

    def test_speedup_at_four_devices(self):
        """Acceptance: modeled speedup > 1.5x at 4 devices for n >= 20000."""
        one = MultiDeviceExecutor(["gtx680-cuda"]).sweep_makespan(20_000)
        four = MultiDeviceExecutor(["gtx680-cuda"] * 4).sweep_makespan(20_000)
        assert one / four > 1.5


class TestStatsAndTransfers:
    def test_sweep_stats_pool_invariant(self):
        """Total counted work does not depend on how tiles are split."""
        s1 = MultiDeviceExecutor(["gtx680-cuda"]).sweep_stats(20_000)
        s4 = MultiDeviceExecutor(["gtx680-cuda"] * 4).sweep_stats(20_000)
        assert s4.pair_checks == s1.pair_checks
        assert s4.flops == pytest.approx(s1.flops)

    def test_run_sweep_accumulates_caller_stats(self):
        executor = MultiDeviceExecutor(["gtx680-cuda"] * 2, range_size=64)
        stats = KernelStats()
        executor.run_sweep(_coords(200, 0), stats=stats)
        assert stats.pair_checks > 0
        assert stats.launches == executor.schedule(200).num_tiles

    def test_upload_seconds_per_device(self):
        pool = [_tiny_gpu("a", 4), _tiny_gpu("b", 4)]
        executor = MultiDeviceExecutor(pool)
        ups = executor.upload_seconds(10_000)
        assert len(ups) == 2
        assert all(u > 0 for u in ups)


class TestTelemetryLanes:
    def test_one_lane_per_pool_member(self):
        executor = MultiDeviceExecutor(["gtx680-cuda"] * 3, range_size=64)
        assert executor.lanes == [
            "gtx680-cuda#0", "gtx680-cuda#1", "gtx680-cuda#2",
        ]
        with Profiler() as profiler:
            executor.run_sweep(_coords(220, 1))
        tracks = {s.track for s in profiler.spans if s.track != "host"}
        assert tracks == set(executor.lanes)

    def test_chrome_trace_one_thread_row_per_lane(self):
        """Acceptance: the exported trace has one device track per pool
        member, carrying that member's launches."""
        from repro.core.local_search import LocalSearch
        from repro.telemetry import to_chrome_trace

        with Profiler() as profiler:
            LocalSearch(
                ["gtx680-cuda"] * 2, backend="multi-gpu"
            ).run(_coords(150, 3))
        trace = to_chrome_trace(profiler.tracer)
        names = {
            e["args"]["name"] for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name" and e["pid"] == 2
        }
        assert {"gtx680-cuda#0", "gtx680-cuda#1"} <= names
        lane_events = [
            e for e in trace["traceEvents"]
            if e.get("ph") == "X" and e["pid"] == 2
        ]
        assert lane_events


class TestValidation:
    def test_rejects_empty_pool(self):
        with pytest.raises(GpuSimError):
            MultiDeviceExecutor([])

    def test_rejects_cpu_member(self):
        with pytest.raises(GpuSimError):
            MultiDeviceExecutor(["gtx680-cuda", "i7-3960x-opencl"])

    def test_rejects_unknown_policy(self):
        with pytest.raises(GpuSimError):
            MultiDeviceExecutor(["gtx680-cuda"], policy="magic")  # type: ignore[arg-type]
