"""Tests for KernelStats accumulation."""

from repro.gpusim.stats import KernelStats


class TestKernelStats:
    def test_merge(self):
        a = KernelStats(flops=10, atomics=1)
        b = KernelStats(flops=5, barriers=2)
        c = a.merge(b)
        assert c.flops == 15 and c.atomics == 1 and c.barriers == 2
        # originals untouched
        assert a.flops == 10 and b.flops == 5

    def test_iadd(self):
        a = KernelStats(flops=1)
        a += KernelStats(flops=2, launches=1)
        assert a.flops == 3
        assert a.launches == 1

    def test_scaled(self):
        s = KernelStats(flops=3, global_load_bytes=8).scaled(4)
        assert s.flops == 12
        assert s.global_load_bytes == 32

    def test_total_flops_includes_special(self):
        s = KernelStats(flops=10, special_ops=4)
        assert s.total_flops == 14

    def test_global_aggregates(self):
        s = KernelStats(global_load_transactions=2, global_store_transactions=3,
                        global_load_bytes=100, global_store_bytes=50)
        assert s.global_transactions == 5
        assert s.global_bytes == 150

    def test_notes_merged(self):
        a = KernelStats(notes={"x": 1})
        b = KernelStats(notes={"y": 2})
        assert a.merge(b).notes == {"x": 1, "y": 2}

    def test_approx_equal_tolerance(self):
        a = KernelStats(flops=100)
        b = KernelStats(flops=103)
        assert a.approx_equal(b, rel=0.05)
        assert not a.approx_equal(KernelStats(flops=120), rel=0.05)

    def test_approx_equal_ignores_shared_zeros(self):
        assert KernelStats().approx_equal(KernelStats())


class TestNotesHandling:
    def test_merge_right_side_wins_on_conflict(self):
        a = KernelStats(notes={"k": "a", "only_a": 1})
        b = KernelStats(notes={"k": "b"})
        assert a.merge(b).notes == {"k": "b", "only_a": 1}

    def test_merge_does_not_alias_note_dicts(self):
        a = KernelStats(notes={"x": 1})
        merged = a.merge(KernelStats())
        merged.notes["x"] = 99
        assert a.notes["x"] == 1

    def test_iadd_updates_notes_in_place(self):
        a = KernelStats(notes={"x": 1})
        a += KernelStats(notes={"y": 2, "x": 3})
        assert a.notes == {"x": 3, "y": 2}

    def test_iadd_does_not_alias_other_notes(self):
        b = KernelStats(notes={"y": 2})
        a = KernelStats()
        a += b
        a.notes["y"] = 5
        assert b.notes["y"] == 2

    def test_scaled_copies_notes_unscaled(self):
        s = KernelStats(flops=2, notes={"variant": "tiled"}).scaled(10)
        assert s.flops == 20
        assert s.notes == {"variant": "tiled"}

    def test_scaled_does_not_alias_notes(self):
        a = KernelStats(notes={"x": 1})
        a.scaled(2).notes["x"] = 9
        assert a.notes["x"] == 1


class TestApproxEqualEdgeCases:
    def test_zero_vs_nonzero_counter_differs(self):
        # scale = max(|a|,|b|) = b, relative error 1.0 > tolerance
        assert not KernelStats(flops=0).approx_equal(KernelStats(flops=1))
        assert not KernelStats(flops=1).approx_equal(KernelStats(flops=0))

    def test_both_zero_counters_agree(self):
        assert KernelStats().approx_equal(KernelStats(), rel=0.0)

    def test_asymmetric_tolerance_is_symmetric(self):
        """The denominator is max(|a|,|b|), so argument order is irrelevant."""
        a, b = KernelStats(flops=100), KernelStats(flops=95)
        assert a.approx_equal(b, rel=0.05) == b.approx_equal(a, rel=0.05)
        # 5/100 == 0.05, right at (not over) the tolerance
        assert a.approx_equal(b, rel=0.05)
        # just past it
        assert not KernelStats(flops=100).approx_equal(
            KernelStats(flops=94), rel=0.05
        )

    def test_one_bad_counter_fails_overall(self):
        a = KernelStats(flops=100, barriers=10)
        b = KernelStats(flops=100, barriers=20)
        assert not a.approx_equal(b)

    def test_notes_ignored(self):
        a = KernelStats(flops=1, notes={"x": 1})
        b = KernelStats(flops=1, notes={"x": 2})
        assert a.approx_equal(b)

    def test_tight_and_loose_tolerances(self):
        a, b = KernelStats(flops=100), KernelStats(flops=110)
        assert not a.approx_equal(b, rel=0.05)
        assert a.approx_equal(b, rel=0.20)
