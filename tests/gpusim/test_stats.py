"""Tests for KernelStats accumulation."""

from repro.gpusim.stats import KernelStats


class TestKernelStats:
    def test_merge(self):
        a = KernelStats(flops=10, atomics=1)
        b = KernelStats(flops=5, barriers=2)
        c = a.merge(b)
        assert c.flops == 15 and c.atomics == 1 and c.barriers == 2
        # originals untouched
        assert a.flops == 10 and b.flops == 5

    def test_iadd(self):
        a = KernelStats(flops=1)
        a += KernelStats(flops=2, launches=1)
        assert a.flops == 3
        assert a.launches == 1

    def test_scaled(self):
        s = KernelStats(flops=3, global_load_bytes=8).scaled(4)
        assert s.flops == 12
        assert s.global_load_bytes == 32

    def test_total_flops_includes_special(self):
        s = KernelStats(flops=10, special_ops=4)
        assert s.total_flops == 14

    def test_global_aggregates(self):
        s = KernelStats(global_load_transactions=2, global_store_transactions=3,
                        global_load_bytes=100, global_store_bytes=50)
        assert s.global_transactions == 5
        assert s.global_bytes == 150

    def test_notes_merged(self):
        a = KernelStats(notes={"x": 1})
        b = KernelStats(notes={"y": 2})
        assert a.merge(b).notes == {"x": 1, "y": 2}

    def test_approx_equal_tolerance(self):
        a = KernelStats(flops=100)
        b = KernelStats(flops=103)
        assert a.approx_equal(b, rel=0.05)
        assert not a.approx_equal(KernelStats(flops=120), rel=0.05)

    def test_approx_equal_ignores_shared_zeros(self):
        assert KernelStats().approx_equal(KernelStats())
