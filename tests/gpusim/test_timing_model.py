"""Tests for the roofline/latency timing model."""

import pytest

from repro.gpusim.device import get_device
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.stats import KernelStats
from repro.gpusim.timing_model import (
    predict_cpu_time,
    predict_kernel_time,
    sustained_gflops,
)


def scan_stats(n: int, launch: LaunchConfig) -> KernelStats:
    pairs = n * (n - 1) // 2
    return KernelStats(
        flops=pairs * 28, special_ops=pairs * 4, pair_checks=pairs,
        launches=1, threads_launched=launch.total_threads,
    )


class TestGPUModel:
    def test_small_problem_is_launch_bound(self, gtx680):
        lc = LaunchConfig(28, 1024)
        t = predict_kernel_time(scan_stats(100, lc), gtx680, lc)
        # Table II: every instance below ~1000 cities costs the same ~20 us
        assert 10e-6 < t.total < 40e-6
        assert t.overhead > t.compute

    def test_large_problem_is_compute_bound(self, gtx680):
        lc = LaunchConfig(28, 1024)
        t = predict_kernel_time(scan_stats(6000, lc), gtx680, lc,
                                shared_bytes=8 * 6000)
        assert t.compute > t.overhead
        assert t.compute >= t.memory

    def test_monotone_in_problem_size(self, gtx680):
        lc = LaunchConfig(28, 1024)
        times = [
            predict_kernel_time(scan_stats(n, lc), gtx680, lc).total
            for n in (100, 500, 1000, 3000, 6000)
        ]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_sustained_rate_matches_calibration(self, gtx680):
        """Large-n GFLOP/s must approach the paper's observed 680."""
        lc = LaunchConfig(28, 1024)
        s = scan_stats(6000, lc)
        t = predict_kernel_time(s, gtx680, lc, shared_bytes=8 * 6000)
        rate = sustained_gflops(s, t.total)
        assert 0.85 * gtx680.sustained_gflops < rate <= gtx680.sustained_gflops * 1.01

    def test_memory_bound_kernel(self, gtx680):
        lc = LaunchConfig(28, 1024)
        s = KernelStats(flops=1000, global_load_transactions=10**7,
                        pair_checks=10**7, launches=1,
                        threads_launched=lc.total_threads)
        t = predict_kernel_time(s, gtx680, lc)
        assert t.memory > t.compute
        assert t.total >= t.memory

    def test_launch_overhead_scales_with_launches(self, gtx680):
        lc = LaunchConfig(28, 1024)
        s1 = scan_stats(1000, lc)
        s10 = scan_stats(1000, lc)
        s10.launches = 10
        t1 = predict_kernel_time(s1, gtx680, lc)
        t10 = predict_kernel_time(s10, gtx680, lc)
        assert t10.overhead > 5 * t1.overhead


class TestCPUModel:
    def test_six_core_i7_rate(self, i7cpu):
        s = scan_stats(6000, LaunchConfig(1, 1))
        t = predict_cpu_time(s, i7cpu, working_set_bytes=8 * 6000)
        rate = sustained_gflops(s, t.total)
        assert 10 < rate < 20  # ~15 GFLOP/s effective

    def test_sequential_thread_limit(self, i7cpu):
        s = scan_stats(3000, LaunchConfig(1, 1))
        t6 = predict_cpu_time(s, i7cpu, threads=6)
        t1 = predict_cpu_time(s, i7cpu, threads=1)
        assert 4 < t1.total / t6.total < 8

    def test_scattered_big_working_set_penalized(self, i7cpu):
        s = KernelStats(global_load_bytes=1e9, launches=1)
        fast = predict_cpu_time(s, i7cpu, working_set_bytes=1024)
        slow = predict_cpu_time(s, i7cpu, working_set_bytes=10**9, scattered=True)
        assert slow.total > 2 * fast.total

    def test_gpu_vs_cpu_band_matches_abstract(self, gtx680, i7cpu):
        """Abstract: 2-opt 5-45x faster than the 6-core parallel CPU code."""
        lc = LaunchConfig(28, 1024)
        ratios = []
        for n in (500, 1000, 3000, 6000, 20000):
            s = scan_stats(n, lc)
            tg = predict_kernel_time(s, gtx680, lc, shared_bytes=8 * min(n, 6144))
            tc = predict_cpu_time(s, i7cpu, working_set_bytes=8 * n)
            ratios.append(tc.total / tg.total)
        assert max(ratios) <= 50
        assert max(ratios) >= 35  # approaches 45x
        assert min(ratios) >= 3   # small-size end of the band


class TestSustainedGflops:
    def test_requires_positive_time(self):
        with pytest.raises(ValueError):
            sustained_gflops(KernelStats(flops=1), 0.0)

    def test_value(self):
        assert sustained_gflops(KernelStats(flops=2e9), 1.0) == 2.0
