"""Property-based tests for the timing model's structural invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpusim.device import DEVICES, get_device
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.stats import KernelStats
from repro.gpusim.timing_model import predict_cpu_time, predict_kernel_time

gpu_keys = [k for k, d in DEVICES.items() if d.is_gpu]
cpu_keys = [k for k, d in DEVICES.items() if not d.is_gpu]


def scan_stats(pairs: int, total_threads: int) -> KernelStats:
    return KernelStats(flops=pairs * 28, special_ops=pairs * 4,
                       pair_checks=pairs, launches=1,
                       threads_launched=total_threads)


class TestGPUTimingProperties:
    @given(st.sampled_from(gpu_keys), st.integers(10, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_time_positive_and_finite(self, key, pairs):
        dev = get_device(key)
        lc = LaunchConfig(8, min(256, dev.max_threads_per_block))
        t = predict_kernel_time(scan_stats(pairs, lc.total_threads), dev, lc)
        assert 0 < t.total < 1e6
        assert t.total >= t.overhead

    @given(st.sampled_from(gpu_keys),
           st.integers(100, 10**7), st.integers(2, 20))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_work(self, key, pairs, factor):
        dev = get_device(key)
        lc = LaunchConfig(8, min(256, dev.max_threads_per_block))
        t1 = predict_kernel_time(scan_stats(pairs, lc.total_threads), dev, lc)
        t2 = predict_kernel_time(
            scan_stats(pairs * factor, lc.total_threads), dev, lc
        )
        assert t2.total >= t1.total

    @given(st.integers(1000, 10**7))
    @settings(max_examples=30, deadline=None)
    def test_never_faster_than_peak(self, pairs):
        """The model can never sustain more than the calibrated rate."""
        dev = get_device("gtx680-cuda")
        lc = LaunchConfig(28, 1024)
        s = scan_stats(pairs, lc.total_threads)
        t = predict_kernel_time(s, dev, lc)
        gflops = s.total_flops / t.total / 1e9
        assert gflops <= dev.sustained_gflops * 1.001

    @given(st.sampled_from(gpu_keys))
    @settings(max_examples=len(gpu_keys), deadline=None)
    def test_empty_launch_costs_overhead(self, key):
        dev = get_device(key)
        lc = LaunchConfig(1, 32)
        t = predict_kernel_time(KernelStats(launches=1, threads_launched=32),
                                dev, lc)
        assert t.total >= dev.launch_overhead_s


class TestCPUTimingProperties:
    @given(st.sampled_from(cpu_keys), st.integers(10, 10**8))
    @settings(max_examples=40, deadline=None)
    def test_positive(self, key, pairs):
        dev = get_device(key)
        t = predict_cpu_time(scan_stats(pairs, 1), dev)
        assert t.total > 0

    @given(st.sampled_from(cpu_keys), st.integers(10**6, 10**8))
    @settings(max_examples=30, deadline=None)
    def test_more_threads_never_slower_on_large_scans(self, key, pairs):
        """Parallelism wins once the scan amortizes the spawn overhead.

        (For *tiny* scans the model correctly prefers one thread — the
        spawn overhead dominates — so the property is stated for scans
        of at least a million pair checks.)
        """
        dev = get_device(key)
        s = scan_stats(pairs, 1)
        times = [predict_cpu_time(s, dev, threads=t).total
                 for t in range(1, dev.cores + 1)]
        assert times[0] >= times[-1]

    @given(st.integers(1000, 10**7))
    @settings(max_examples=20, deadline=None)
    def test_every_gpu_beats_every_cpu_on_large_scans(self, pairs):
        if pairs < 10**6:
            pairs += 10**6
        cpu_best = min(
            predict_cpu_time(scan_stats(pairs, 1), get_device(k)).total
            for k in cpu_keys
        )
        for k in gpu_keys:
            dev = get_device(k)
            lc = LaunchConfig(8, min(256, dev.max_threads_per_block))
            t = predict_kernel_time(scan_stats(pairs, lc.total_threads), dev, lc)
            assert t.total < cpu_best
