"""Tests for the kernel-launch trace collector."""

import numpy as np
import pytest

from repro.core.two_opt_gpu import TwoOptKernelOrdered
from repro.gpusim.kernel import LaunchConfig
from repro.gpusim.stats import KernelStats
from repro.gpusim.timing_model import TimeBreakdown
from repro.gpusim.trace import LaunchRecord, TraceCollector, traced_launch


def fake_time(total=1e-4):
    return TimeBreakdown(total=total, compute=total / 2, memory=total / 4,
                         shared=0.0, overhead=total / 4, utilization=1.0)


class TestTraceCollector:
    def test_records_launches(self):
        tc = TraceCollector()
        tc.add_launch("k1", "dev", 4, 64, KernelStats(flops=10), fake_time())
        tc.add_launch("k2", "dev", 4, 64, KernelStats(flops=20), fake_time())
        assert tc.launch_count == 2
        assert tc.total_seconds == pytest.approx(2e-4)

    def test_by_kernel_aggregation(self):
        tc = TraceCollector()
        for _ in range(3):
            tc.add_launch("a", "d", 1, 1, KernelStats(), fake_time(1e-3))
        tc.add_launch("b", "d", 1, 1, KernelStats(), fake_time(5e-3))
        agg = tc.by_kernel()
        assert agg["a"] == (3, pytest.approx(3e-3))
        assert agg["b"][0] == 1

    def test_max_records_bound(self):
        tc = TraceCollector(max_records=2)
        for _ in range(5):
            tc.add_launch("k", "d", 1, 1, KernelStats(), fake_time())
        assert len(tc.records) == 2
        assert tc.dropped == 3
        assert tc.launch_count == 5

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            TraceCollector(max_records=0)

    def test_jsonl_round_trip(self):
        tc = TraceCollector()
        tc.add_launch("k", "GTX", 8, 128, KernelStats(flops=42, pair_checks=7),
                      fake_time())
        back = TraceCollector.from_jsonl(tc.to_jsonl())
        assert len(back.records) == 1
        assert back.records[0].flops == 42
        assert back.records[0].kernel == "k"

    def test_summary_output(self):
        tc = TraceCollector()
        tc.add_launch("2opt-ordered", "GTX", 8, 128, KernelStats(), fake_time())
        s = tc.summary()
        assert "2opt-ordered" in s
        assert "total" in s

    def test_empty_summary(self):
        assert "no launches" in TraceCollector().summary()


class TestTracedLaunch:
    def test_records_real_launch(self, gtx680, small_launch):
        tc = TraceCollector()
        c = np.random.default_rng(0).uniform(0, 100, (64, 2)).astype(np.float32)
        res = traced_launch(tc, TwoOptKernelOrdered(), gtx680, small_launch,
                            coords_ordered=c)
        assert res.output[0] <= 0
        assert len(tc.records) == 1
        rec = tc.records[0]
        assert rec.kernel == "2opt-ordered"
        assert rec.grid_dim == small_launch.grid_dim
        assert rec.pair_checks == 64 * 63 / 2

    def test_none_collector_is_noop(self, gtx680, small_launch):
        c = np.random.default_rng(1).uniform(0, 100, (32, 2)).astype(np.float32)
        res = traced_launch(None, TwoOptKernelOrdered(), gtx680, small_launch,
                            coords_ordered=c)
        assert res.output is not None


class TestJsonlRoundTripFidelity:
    """The meta header keeps max_records and dropped across round trips."""

    def test_max_records_survives(self):
        tc = TraceCollector(max_records=7)
        tc.add_launch("k", "d", 1, 1, KernelStats(), fake_time())
        back = TraceCollector.from_jsonl(tc.to_jsonl())
        assert back.max_records == 7

    def test_dropped_count_survives(self):
        tc = TraceCollector(max_records=2)
        for _ in range(5):
            tc.add_launch("k", "d", 1, 1, KernelStats(), fake_time())
        back = TraceCollector.from_jsonl(tc.to_jsonl())
        assert back.dropped == 3
        assert back.launch_count == tc.launch_count == 5
        assert len(back.records) == 2

    def test_double_round_trip_stable(self):
        tc = TraceCollector(max_records=3)
        for _ in range(4):
            tc.add_launch("k", "d", 1, 1, KernelStats(), fake_time())
        once = TraceCollector.from_jsonl(tc.to_jsonl())
        twice = TraceCollector.from_jsonl(once.to_jsonl())
        assert twice.max_records == 3
        assert twice.dropped == 1
        assert len(twice.records) == 3

    def test_headerless_legacy_input_still_parses(self):
        import json as _json
        from dataclasses import asdict

        tc = TraceCollector()
        tc.add_launch("k", "d", 1, 1, KernelStats(flops=5), fake_time())
        legacy = "\n".join(_json.dumps(asdict(r)) for r in tc.records)
        back = TraceCollector.from_jsonl(legacy)
        assert len(back.records) == 1
        assert back.dropped == 0
        assert back.max_records == 100_000

    def test_summary_zero_total_guard(self):
        tc = TraceCollector()
        tc.add_launch("k", "d", 1, 1, KernelStats(), fake_time(0.0))
        summary = tc.summary()
        # zero total time must not report a 100% total share
        total_row = [l for l in summary.splitlines() if l.startswith("total")][0]
        assert "0.0%" in total_row
