"""Tests for the PCIe transfer model."""

import pytest

from repro.gpusim.transfer import round_trip_time, transfer_time


class TestTransferTime:
    def test_zero_bytes_costs_latency_only(self, gtx680):
        t = transfer_time(gtx680, 0)
        assert t.total == gtx680.pcie_latency_s
        assert t.wire == 0

    def test_linear_in_size(self, gtx680):
        small = transfer_time(gtx680, 10**6)
        large = transfer_time(gtx680, 10**8)
        assert large.wire == pytest.approx(100 * small.wire)

    def test_negative_rejected(self, gtx680):
        with pytest.raises(ValueError):
            transfer_time(gtx680, -1)

    def test_paper_scale_small_instance(self, gtx680):
        """Table II: H2D for small instances ~tens of us (dominated by
        latency), D2H of a single result ~10 us."""
        h2d = transfer_time(gtx680, 8 * 100)  # kroE100 coordinates
        d2h = transfer_time(gtx680, 16)
        assert h2d.total < 50e-6
        assert d2h.total < 20e-6

    def test_share_shrinks_with_problem_size(self, gtx680):
        """§V: transfer proportion decreases as the problem grows
        (transfers are O(n), the kernel is O(n^2))."""
        from repro.core.local_search import LocalSearch

        ls = LocalSearch(gtx680)
        shares = []
        for n in (100, 1000, 5000):
            kernel = ls.scan_seconds(n)
            xfer = round_trip_time(gtx680, 8 * n, 16)
            shares.append(xfer / (kernel + xfer))
        assert shares[0] > shares[1] > shares[2]

    def test_round_trip_is_sum(self, gtx680):
        rt = round_trip_time(gtx680, 1000, 16)
        assert rt == pytest.approx(
            transfer_time(gtx680, 1000).total + transfer_time(gtx680, 16).total
        )
