"""Tests for the Christofides baseline."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.heuristics.christofides import christofides_tour
from repro.tsplib.distances import euc2d_distance_float
from repro.tsplib.generators import generate_instance


class TestChristofides:
    def test_is_permutation(self, inst100):
        t = christofides_tour(inst100)
        assert np.array_equal(np.sort(t), np.arange(100))

    def test_approximation_guarantee_holds_loosely(self):
        """Christofides is within 1.5x of optimal; against the 2-opt
        local minimum (itself above optimal) it must be within 1.5x."""
        from repro.core.local_search import LocalSearch

        inst = generate_instance(150, seed=2)
        chris_len = inst.tour_length(christofides_tour(inst))
        res = LocalSearch("gtx680-cuda", strategy="batch").run(
            inst.coords.astype(np.float32)
        )
        assert chris_len <= 1.5 * res.final_length

    def test_beats_random(self, inst100):
        chris = inst100.tour_length(christofides_tour(inst100))
        rnd = inst100.tour_length(np.random.default_rng(0).permutation(100))
        assert chris < 0.5 * rnd

    def test_size_guard(self):
        inst = generate_instance(100, seed=0)
        with pytest.raises(SolverError):
            christofides_tour(inst, max_n=50)

    def test_tiny(self):
        inst = generate_instance(4, seed=0)
        t = christofides_tour(inst)
        assert np.array_equal(np.sort(t), np.arange(4))

    def test_mst_lower_bound_respected(self):
        """Tour length >= MST weight (sanity of the construction)."""
        import networkx as nx

        inst = generate_instance(60, seed=5)
        c = inst.coords
        g = nx.Graph()
        for i in range(60):
            for j in range(i + 1, 60):
                g.add_edge(i, j, weight=float(np.linalg.norm(c[i] - c[j])))
        mst_w = sum(d["weight"] for _, _, d in
                    nx.minimum_spanning_tree(g).edges(data=True))
        tour = christofides_tour(inst)
        tour_w = float(
            euc2d_distance_float(c[tour], c[np.roll(tour, -1)]).sum()
        )
        assert tour_w >= mst_w
