"""Tests for Multiple Fragment (greedy) construction."""

import numpy as np
import pytest

from repro.heuristics.greedy_mf import multiple_fragment_tour, _UnionFind
from repro.heuristics.nearest_neighbor import nearest_neighbor_tour
from repro.tsplib.generators import generate_instance


class TestUnionFind:
    def test_basic(self):
        uf = _UnionFind(5)
        assert uf.find(0) != uf.find(1)
        uf.union(0, 1)
        assert uf.find(0) == uf.find(1)

    def test_transitive(self):
        uf = _UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        assert uf.find(0) == uf.find(2)
        assert uf.find(4) != uf.find(0)


class TestMultipleFragment:
    def test_is_permutation(self, inst300):
        t = multiple_fragment_tour(inst300)
        assert np.array_equal(np.sort(t), np.arange(300))

    def test_deterministic(self, inst300):
        assert np.array_equal(
            multiple_fragment_tour(inst300), multiple_fragment_tour(inst300)
        )

    def test_beats_nearest_neighbor_on_average(self):
        """Bentley 1990: MF tours are consistently better than NN tours."""
        wins = 0
        for seed in range(5):
            inst = generate_instance(400, seed=seed)
            mf = inst.tour_length(multiple_fragment_tour(inst))
            nn = inst.tour_length(nearest_neighbor_tour(inst, start=0))
            if mf < nn:
                wins += 1
        assert wins >= 4

    def test_shortest_edge_always_used(self, inst300):
        """The greedy rule must take the globally shortest edge first."""
        c = inst300.coords
        t = multiple_fragment_tour(inst300)
        # find the overall nearest pair
        from scipy.spatial import cKDTree

        d, idx = cKDTree(c).query(c, k=2)
        a = int(np.argmin(d[:, 1]))
        b = int(idx[a, 1])
        # a and b must be adjacent in the tour
        pa = int(np.where(t == a)[0][0])
        n = t.size
        assert b in (t[(pa + 1) % n], t[(pa - 1) % n])

    @pytest.mark.parametrize("dist", ["uniform", "clustered", "grid", "geo"])
    def test_all_geometry_classes(self, dist):
        inst = generate_instance(250, distribution=dist, seed=3)
        t = multiple_fragment_tour(inst)
        assert np.array_equal(np.sort(t), np.arange(250))

    def test_small_neighbor_k_still_valid(self, inst300):
        t = multiple_fragment_tour(inst300, neighbor_k=2)
        assert np.array_equal(np.sort(t), np.arange(300))

    def test_tiny_instances(self):
        inst = generate_instance(4, seed=0)
        t = multiple_fragment_tour(inst)
        assert np.array_equal(np.sort(t), np.arange(4))

    def test_duplicate_points(self):
        from repro.tsplib.instance import TSPInstance

        coords = np.zeros((6, 2))
        coords[3:] = [[1, 1], [2, 2], [3, 3]]
        inst = TSPInstance(name="dup", coords=coords)
        t = multiple_fragment_tour(inst)
        assert np.array_equal(np.sort(t), np.arange(6))
