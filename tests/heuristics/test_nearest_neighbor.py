"""Tests for nearest-neighbor construction."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.heuristics.nearest_neighbor import nearest_neighbor_tour
from repro.tsplib.generators import generate_instance


class TestNearestNeighborTour:
    def test_is_permutation(self, inst300):
        t = nearest_neighbor_tour(inst300, start=0)
        assert np.array_equal(np.sort(t), np.arange(300))

    def test_starts_at_requested_city(self, inst300):
        assert nearest_neighbor_tour(inst300, start=42)[0] == 42

    def test_random_start_deterministic_by_seed(self, inst300):
        a = nearest_neighbor_tour(inst300, seed=1)
        b = nearest_neighbor_tour(inst300, seed=1)
        assert np.array_equal(a, b)

    def test_first_step_goes_to_true_nearest(self, inst300):
        t = nearest_neighbor_tour(inst300, start=10)
        c = inst300.coords
        d = np.linalg.norm(c - c[10], axis=1)
        d[10] = np.inf
        assert t[1] == np.argmin(d)

    def test_beats_random_tour(self, inst300):
        nn_len = inst300.tour_length(nearest_neighbor_tour(inst300, start=0))
        rng = np.random.default_rng(0)
        rand_len = inst300.tour_length(rng.permutation(300))
        assert nn_len < 0.6 * rand_len

    def test_invalid_start(self, inst100):
        with pytest.raises(SolverError):
            nearest_neighbor_tour(inst100, start=100)

    def test_clustered_instances(self):
        inst = generate_instance(400, distribution="clustered", seed=5)
        t = nearest_neighbor_tour(inst, start=0)
        assert np.array_equal(np.sort(t), np.arange(400))

    def test_duplicate_points(self):
        from repro.tsplib.instance import TSPInstance

        coords = np.array([[0.0, 0], [0, 0], [1, 1], [2, 2], [0, 0]])
        inst = TSPInstance(name="dup", coords=coords)
        t = nearest_neighbor_tour(inst, start=0)
        assert np.array_equal(np.sort(t), np.arange(5))
