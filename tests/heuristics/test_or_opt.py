"""Tests for the Or-opt pass."""

import numpy as np

from repro.heuristics.or_opt import or_opt_pass
from repro.tsplib.generators import generate_instance
from repro.core.moves import next_distances


def tour_len(c, order):
    return int(next_distances(c[order].astype(np.float32)).sum())


class TestOrOptPass:
    def test_preserves_permutation(self, inst300):
        order, _ = or_opt_pass(inst300.coords, np.arange(300))
        assert np.array_equal(np.sort(order), np.arange(300))

    def test_gain_matches_length_change(self, inst300):
        c = inst300.coords
        order0 = np.random.default_rng(1).permutation(300)
        order1, gain = or_opt_pass(c, order0)
        assert gain >= 0
        assert tour_len(c, order0) - tour_len(c, order1) == gain

    def test_improves_random_tours(self, inst300):
        order0 = np.random.default_rng(2).permutation(300)
        _, gain = or_opt_pass(inst300.coords, order0)
        assert gain > 0

    def test_improves_2opt_minima_sometimes(self):
        """Or-opt's value: it finds moves 2-opt cannot express. Over a
        few instances, at least one 2-opt-optimal tour improves."""
        from repro.core.local_search import LocalSearch

        improved = 0
        for seed in range(3):
            inst = generate_instance(200, seed=seed)
            res = LocalSearch("gtx680-cuda").run(
                inst.coords.astype(np.float32)
            )
            _, gain = or_opt_pass(inst.coords[res.order], np.arange(200))
            if gain > 0:
                improved += 1
        assert improved >= 1

    def test_tiny_tours_untouched(self):
        order = np.arange(4)
        out, gain = or_opt_pass(np.random.default_rng(0).uniform(0, 10, (4, 2)), order)
        assert gain == 0
        assert np.array_equal(out, order)

    def test_input_not_mutated(self, inst300):
        order0 = np.random.default_rng(3).permutation(300)
        backup = order0.copy()
        or_opt_pass(inst300.coords, order0)
        assert np.array_equal(order0, backup)
