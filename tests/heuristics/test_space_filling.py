"""Tests for Hilbert-curve tour construction."""

import numpy as np
import pytest

from repro.heuristics.space_filling import hilbert_d, hilbert_tour
from repro.tsplib.generators import generate_instance


class TestHilbertD:
    def test_order1_quadrants(self):
        # 2x2 curve: (0,0)->0, (0,1)->1, (1,1)->2, (1,0)->3
        x = np.array([0, 0, 1, 1])
        y = np.array([0, 1, 1, 0])
        d = hilbert_d(x, y, 1)
        assert list(d) == [0, 1, 2, 3]

    def test_bijective_on_small_grid(self):
        order = 3
        side = 1 << order
        xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        d = hilbert_d(xs.ravel().astype(np.int64), ys.ravel().astype(np.int64), order)
        assert np.array_equal(np.sort(d), np.arange(side * side))

    def test_curve_is_continuous(self):
        """Consecutive Hilbert indices are grid neighbors (the locality
        property the construction relies on)."""
        order = 4
        side = 1 << order
        xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        flat_x = xs.ravel().astype(np.int64)
        flat_y = ys.ravel().astype(np.int64)
        d = hilbert_d(flat_x, flat_y, order)
        by_d = np.argsort(d)
        px, py = flat_x[by_d], flat_y[by_d]
        steps = np.abs(np.diff(px)) + np.abs(np.diff(py))
        assert np.all(steps == 1)

    def test_order_bounds(self):
        with pytest.raises(ValueError):
            hilbert_d(np.array([0]), np.array([0]), 0)
        with pytest.raises(ValueError):
            hilbert_d(np.array([0]), np.array([0]), 32)


class TestHilbertTour:
    def test_is_permutation(self, inst300):
        t = hilbert_tour(inst300)
        assert np.array_equal(np.sort(t), np.arange(300))

    def test_deterministic(self, inst300):
        assert np.array_equal(hilbert_tour(inst300), hilbert_tour(inst300))

    def test_beats_random_substantially(self):
        inst = generate_instance(2000, seed=3)
        hil = inst.tour_length(hilbert_tour(inst))
        rnd = inst.tour_length(np.random.default_rng(0).permutation(2000))
        assert hil < 0.25 * rnd

    def test_scales_to_large_instances_fast(self):
        import time

        inst = generate_instance(100_000, seed=1)
        t0 = time.perf_counter()
        t = hilbert_tour(inst)
        assert time.perf_counter() - t0 < 5.0
        assert np.array_equal(np.sort(t), np.arange(100_000))

    def test_collinear_points(self):
        from repro.tsplib.instance import TSPInstance

        coords = np.column_stack([np.arange(50, dtype=float), np.zeros(50)])
        inst = TSPInstance(name="line", coords=coords)
        t = hilbert_tour(inst)
        assert np.array_equal(np.sort(t), np.arange(50))
