"""Tests for the restricted 3-opt pass."""

import numpy as np

from repro.core.moves import next_distances
from repro.heuristics.three_opt import three_opt_segment_pass
from repro.tsplib.generators import generate_instance


def tour_len(c, order):
    return int(next_distances(c[order].astype(np.float32)).sum())


class TestThreeOptSegmentPass:
    def test_preserves_permutation(self, inst300):
        order, _ = three_opt_segment_pass(inst300.coords, np.arange(300))
        assert np.array_equal(np.sort(order), np.arange(300))

    def test_gain_matches_length_change(self, inst300):
        c = inst300.coords
        order0 = np.random.default_rng(4).permutation(300)
        order1, gain = three_opt_segment_pass(c, order0)
        assert gain >= 0
        assert tour_len(c, order0) - tour_len(c, order1) == gain

    def test_improves_random_tours(self, inst300):
        order0 = np.random.default_rng(5).permutation(300)
        _, gain = three_opt_segment_pass(inst300.coords, order0)
        assert gain > 0

    def test_never_worsens(self):
        for seed in range(4):
            inst = generate_instance(150, seed=seed)
            order0 = np.random.default_rng(seed).permutation(150)
            before = tour_len(inst.coords, order0)
            order1, _ = three_opt_segment_pass(inst.coords, order0)
            assert tour_len(inst.coords, order1) <= before

    def test_tiny_tours_untouched(self):
        c = np.random.default_rng(0).uniform(0, 10, (5, 2))
        order, gain = three_opt_segment_pass(c, np.arange(5))
        assert gain == 0

    def test_input_not_mutated(self, inst300):
        order0 = np.random.default_rng(6).permutation(300)
        backup = order0.copy()
        three_opt_segment_pass(inst300.coords, order0)
        assert np.array_equal(order0, backup)
