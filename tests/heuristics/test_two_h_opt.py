"""Tests for the 2h-opt ("2.5-opt") move class."""

import numpy as np
import pytest

from repro.core.moves import next_distances
from repro.heuristics.two_h_opt import TwoHMove, TwoHOpt, _apply
from repro.tsplib.generators import generate_instance


def coords_of(n, seed=0):
    return generate_instance(n, seed=seed).coords_float32()


def tour_len(c, order):
    return int(next_distances(c[order]).sum())


class TestApplyMove:
    def test_2opt_kind(self):
        order = np.arange(8)
        out = _apply(order, TwoHMove("2opt", 1, 4, 0))
        assert list(out) == [0, 1, 4, 3, 2, 5, 6, 7]

    def test_insert_forward(self):
        order = np.arange(8)
        out = _apply(order, TwoHMove("insert-forward", 1, 5, 0))
        # city 2 moves between old positions 5 and 6 (cities 5 and 6)
        assert list(out) == [0, 1, 3, 4, 5, 2, 6, 7]

    def test_insert_backward(self):
        order = np.arange(8)
        out = _apply(order, TwoHMove("insert-backward", 1, 5, 0))
        # city 6 moves between cities 1 and 2
        assert list(out) == [0, 1, 6, 2, 3, 4, 5, 7]

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            _apply(np.arange(8), TwoHMove("5opt", 1, 3, 0))

    def test_all_kinds_preserve_permutation(self):
        rng = np.random.default_rng(0)
        for kind in ("2opt", "insert-forward", "insert-backward"):
            order = rng.permutation(20)
            out = _apply(order, TwoHMove(kind, 3, 10, 0))
            assert np.array_equal(np.sort(out), np.arange(20))


class TestTwoHOpt:
    def test_deltas_exact(self):
        """best_move's predicted delta equals the realized length change
        for every selected move along a full descent (the run() method
        asserts this internally; here we check it end to end)."""
        c = coords_of(150, seed=1)
        opt = TwoHOpt(c, k=6)
        order, gain, moves = opt.run()
        assert moves > 0
        assert tour_len(c, np.arange(150)) - tour_len(c, order) == gain

    def test_reaches_candidate_minimum(self):
        c = coords_of(120, seed=2)
        opt = TwoHOpt(c, k=8)
        order, _, _ = opt.run()
        assert opt.best_move(order) is None

    def test_beats_plain_pruned_2opt(self):
        """The richer move set must do at least as well as pruned 2-opt
        from the same start (it strictly contains those moves)."""
        from repro.core.pruned import PrunedTwoOpt

        c = coords_of(250, seed=3)
        two_h = TwoHOpt(c, k=8).run()
        pruned = PrunedTwoOpt(c, k=8).run()
        assert tour_len(c, two_h[0]) <= pruned.final_length * 1.02

    def test_uses_insertion_moves(self):
        """On random tours the insertion variants do fire."""
        kinds = set()
        c = coords_of(150, seed=4)
        opt = TwoHOpt(c, k=8)
        order = np.arange(150)
        for _ in range(200):
            mv = opt.best_move(order)
            if mv is None:
                break
            kinds.add(mv.kind)
            order = _apply(order, mv)
        assert "2opt" in kinds
        assert kinds & {"insert-forward", "insert-backward"}

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            TwoHOpt(coords_of(4), k=2)

    def test_max_moves(self):
        c = coords_of(200, seed=5)
        _, _, moves = TwoHOpt(c, k=6).run(max_moves=3)
        assert moves == 3
