"""Tests for ILS acceptance criteria."""

import numpy as np
import pytest

from repro.ils.acceptance import (
    BetterAcceptance,
    EpsilonAcceptance,
    RandomWalkAcceptance,
)


@pytest.fixture
def g():
    return np.random.default_rng(0)


class TestBetterAcceptance:
    def test_accepts_improvement(self, g):
        assert BetterAcceptance().accept(100, 99, g)

    def test_rejects_equal(self, g):
        assert not BetterAcceptance().accept(100, 100, g)

    def test_rejects_worse(self, g):
        assert not BetterAcceptance().accept(100, 101, g)


class TestEpsilonAcceptance:
    def test_accepts_within_epsilon(self, g):
        assert EpsilonAcceptance(0.05).accept(100, 104, g)

    def test_rejects_beyond_epsilon(self, g):
        assert not EpsilonAcceptance(0.05).accept(100, 106, g)

    def test_zero_epsilon_accepts_equal(self, g):
        assert EpsilonAcceptance(0.0).accept(100, 100, g)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            EpsilonAcceptance(-0.1)


class TestRandomWalkAcceptance:
    def test_accepts_anything(self, g):
        assert RandomWalkAcceptance().accept(1, 10**9, g)
