"""Tests for the IHC (random-restart) baseline."""

import numpy as np
import pytest

from repro.core.local_search import LocalSearch
from repro.errors import SolverError
from repro.ils.ihc import IteratedHillClimbing
from repro.tsplib.generators import generate_instance


def make_ihc(seed=0):
    ls = LocalSearch("gtx680-cuda", strategy="batch")
    return IteratedHillClimbing(ls, seed=seed)


class TestIHC:
    def test_runs_fixed_restarts(self, inst300):
        res = make_ihc().run(inst300, max_restarts=3)
        assert res.restarts == 3
        assert np.array_equal(np.sort(res.best_order), np.arange(300))

    def test_best_is_min_over_restarts(self, inst300):
        res = make_ihc().run(inst300, max_restarts=4)
        trace_best = [l for _, l in res.trace]
        assert res.best_length == min(trace_best)
        # best-so-far is non-increasing
        assert all(a >= b for a, b in zip(trace_best, trace_best[1:]))

    def test_time_budget_stops(self, inst300):
        ls = LocalSearch("gtx680-cuda", strategy="batch")
        per_run = None
        ihc = IteratedHillClimbing(ls, seed=1)
        res = ihc.run(inst300, modeled_time_budget=1e-9)
        assert res.restarts == 1  # always completes at least one

    def test_deterministic(self, inst300):
        a = make_ihc(seed=5).run(inst300, max_restarts=3)
        b = make_ihc(seed=5).run(inst300, max_restarts=3)
        assert a.best_length == b.best_length

    def test_needs_some_budget(self, inst300):
        with pytest.raises(SolverError):
            make_ihc().run(inst300)

    def test_more_restarts_never_worse(self, inst300):
        few = make_ihc(seed=2).run(inst300, max_restarts=2)
        many = make_ihc(seed=2).run(inst300, max_restarts=6)
        assert many.best_length <= few.best_length

    def test_ils_beats_ihc_at_equal_budget(self):
        """§III's argument: iterative refinement > independent restarts.

        At a modest equal modeled budget on a mid-size instance, ILS's
        final tour should not be worse than IHC's (ILS reuses the
        incumbent structure; IHC pays the full descent from random
        every time)."""
        from repro.ils.ils import IteratedLocalSearch
        from repro.ils.termination import ModeledTimeLimit

        inst = generate_instance(400, seed=9)
        budget = 0.03
        ls = LocalSearch("gtx680-cuda", strategy="batch")
        ils = IteratedLocalSearch(ls, termination=ModeledTimeLimit(budget), seed=3)
        ihc = IteratedHillClimbing(ls, seed=3)
        ils_res = ils.run(inst)
        ihc_res = ihc.run(inst, modeled_time_budget=budget)
        assert ils_res.best_length <= ihc_res.best_length * 1.01
