"""Tests for the IteratedLocalSearch driver (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.local_search import LocalSearch
from repro.ils.acceptance import BetterAcceptance, RandomWalkAcceptance
from repro.ils.ils import IteratedLocalSearch
from repro.ils.termination import IterationLimit, ModeledTimeLimit


def make_ils(iterations=5, seed=0, device="gtx680-cuda", backend="gpu", **kw):
    ls = LocalSearch(device, backend=backend, strategy="batch")
    return IteratedLocalSearch(
        ls, termination=IterationLimit(iterations), seed=seed, **kw
    )


class TestAlgorithm1:
    def test_runs_and_improves_over_random_start(self, inst300):
        res = make_ils(iterations=3).run(inst300)
        assert res.best_length < res.initial_length
        assert res.iterations == 3

    def test_best_tour_valid(self, inst300):
        res = make_ils(iterations=2).run(inst300)
        assert np.array_equal(np.sort(res.best_order), np.arange(300))
        assert res.best_tour().length() >= 0

    def test_best_length_matches_tour(self, inst300):
        res = make_ils(iterations=2).run(inst300)
        # float32 pipeline vs canonical metric: tiny rounding tolerance
        assert abs(res.best_tour().length() - res.best_length) <= inst300.n

    def test_deterministic_given_seed(self, inst300):
        a = make_ils(iterations=3, seed=7).run(inst300)
        b = make_ils(iterations=3, seed=7).run(inst300)
        assert a.best_length == b.best_length
        assert np.array_equal(a.best_order, b.best_order)

    def test_incumbent_never_worsens_with_better_acceptance(self, inst300):
        res = make_ils(iterations=5, acceptance=BetterAcceptance()).run(inst300)
        lengths = [l for _, l in res.trace]
        assert all(a >= b for a, b in zip(lengths, lengths[1:]))

    def test_trace_times_monotone(self, inst300):
        res = make_ils(iterations=4).run(inst300)
        times = [t for t, _ in res.trace]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_initial_order_respected(self, inst300):
        from repro.heuristics.greedy_mf import multiple_fragment_tour

        order0 = multiple_fragment_tour(inst300)
        res = make_ils(iterations=1).run(inst300, initial_order=order0)
        assert res.initial_length == inst300.tour_length(order0) or (
            abs(res.initial_length - inst300.tour_length(order0)) <= inst300.n
        )

    def test_modeled_time_limit_stops(self, inst300):
        ls = LocalSearch("gtx680-cuda", strategy="batch")
        budget = 0.002
        ils = IteratedLocalSearch(
            ls, termination=ModeledTimeLimit(budget), seed=0
        )
        res = ils.run(inst300)
        # stops at the first check after exceeding the budget
        assert res.modeled_seconds >= budget

    def test_random_walk_accepts_everything(self, inst300):
        res = make_ils(iterations=4, acceptance=RandomWalkAcceptance()).run(inst300)
        assert res.accepted == 4


class TestPaperClaims:
    def test_local_search_dominates_runtime(self, inst300):
        """§I: at least 90% of ILS time is spent in 2-opt."""
        res = make_ils(iterations=3).run(inst300)
        assert res.local_search_share >= 0.90

    def test_same_trajectory_faster_on_gpu(self, inst300):
        """Identical seeds -> identical tours; the GPU time axis is
        compressed (the basis of Fig. 11)."""
        gpu = make_ils(iterations=3, seed=1).run(inst300)
        cpu = make_ils(
            iterations=3, seed=1, device="i7-3960x-opencl", backend="cpu-parallel"
        ).run(inst300)
        assert gpu.best_length == cpu.best_length
        assert cpu.modeled_seconds > 5 * gpu.modeled_seconds
