"""Tests for ILS perturbation operators."""

import numpy as np
import pytest

from repro.ils.perturbation import DoubleBridgePerturbation, SegmentReversalPerturbation


class TestDoubleBridgePerturbation:
    def test_produces_permutation(self, rng):
        p = DoubleBridgePerturbation()
        out = p(np.arange(50), rng)
        assert np.array_equal(np.sort(out), np.arange(50))

    def test_changes_tour(self, rng):
        p = DoubleBridgePerturbation()
        order = np.arange(100)
        assert not np.array_equal(p(order, rng), order)

    def test_multiple_kicks(self, rng):
        p = DoubleBridgePerturbation(kicks=3)
        out = p(np.arange(60), rng)
        assert np.array_equal(np.sort(out), np.arange(60))

    def test_invalid_kicks(self):
        with pytest.raises(ValueError):
            DoubleBridgePerturbation(kicks=0)

    def test_original_untouched(self, rng):
        order = np.arange(40)
        DoubleBridgePerturbation()(order, rng)
        assert np.array_equal(order, np.arange(40))


class TestSegmentReversalPerturbation:
    def test_produces_permutation(self, rng):
        out = SegmentReversalPerturbation()(np.arange(30), rng)
        assert np.array_equal(np.sort(out), np.arange(30))

    def test_is_a_single_2opt_kick(self, rng):
        """A reversed segment = one 2-opt move: undoable by one move,
        unlike the double bridge."""
        order = np.arange(30)
        out = SegmentReversalPerturbation()(order, rng)
        diff = np.nonzero(out != order)[0]
        if diff.size:
            lo, hi = diff[0], diff[-1]
            assert np.array_equal(out[lo : hi + 1], order[lo : hi + 1][::-1])


class TestAdaptivePerturbation:
    def test_starts_at_one_kick(self):
        from repro.ils.perturbation import AdaptivePerturbation

        p = AdaptivePerturbation()
        assert p.kicks == 1

    def test_escalates_on_stall(self):
        from repro.ils.perturbation import AdaptivePerturbation

        p = AdaptivePerturbation(patience=2, max_kicks=3)
        for _ in range(2):
            p.notify(False)
        assert p.kicks == 2
        for _ in range(2):
            p.notify(False)
        assert p.kicks == 3
        for _ in range(10):
            p.notify(False)
        assert p.kicks == 3  # capped

    def test_resets_on_improvement(self):
        from repro.ils.perturbation import AdaptivePerturbation

        p = AdaptivePerturbation(patience=1, max_kicks=4)
        p.notify(False)
        p.notify(False)
        assert p.kicks > 1
        p.notify(True)
        assert p.kicks == 1

    def test_produces_permutation(self, rng):
        from repro.ils.perturbation import AdaptivePerturbation

        p = AdaptivePerturbation(patience=1)
        p.notify(False)
        out = p(np.arange(60), rng)
        assert np.array_equal(np.sort(out), np.arange(60))

    def test_validation(self):
        from repro.ils.perturbation import AdaptivePerturbation

        with pytest.raises(ValueError):
            AdaptivePerturbation(patience=0)
        with pytest.raises(ValueError):
            AdaptivePerturbation(max_kicks=0)

    def test_integrates_with_ils(self, rng):
        """The ILS loop must call notify() so the operator adapts."""
        from repro.core.local_search import LocalSearch
        from repro.ils.ils import IteratedLocalSearch
        from repro.ils.perturbation import AdaptivePerturbation
        from repro.ils.termination import IterationLimit
        from repro.tsplib.generators import generate_instance

        inst = generate_instance(150, seed=0)
        pert = AdaptivePerturbation(patience=1, max_kicks=4)
        ils = IteratedLocalSearch(
            LocalSearch("gtx680-cuda", strategy="batch"),
            perturbation=pert, termination=IterationLimit(8), seed=0,
        )
        ils.run(inst)
        # after 8 iterations with patience 1, the operator must have
        # adapted at least once (either escalated or reset)
        assert pert.kicks >= 1
