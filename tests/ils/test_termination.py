"""Tests for ILS termination conditions."""

import pytest

from repro.ils.termination import (
    AnyOf,
    IterationLimit,
    ModeledTimeLimit,
    NoImprovementLimit,
    WallClockLimit,
)


def state(**kw):
    base = dict(iteration=0, modeled_seconds=0.0, wall_seconds=0.0,
                iterations_since_improvement=0)
    base.update(kw)
    return base


class TestIterationLimit:
    def test_stops_at_limit(self):
        t = IterationLimit(5)
        assert not t.should_stop(**state(iteration=4))
        assert t.should_stop(**state(iteration=5))

    def test_invalid(self):
        with pytest.raises(ValueError):
            IterationLimit(0)


class TestModeledTimeLimit:
    def test_stops_on_budget(self):
        t = ModeledTimeLimit(1.0)
        assert not t.should_stop(**state(modeled_seconds=0.99))
        assert t.should_stop(**state(modeled_seconds=1.0))

    def test_invalid(self):
        with pytest.raises(ValueError):
            ModeledTimeLimit(0)


class TestWallClockLimit:
    def test_not_stopped_immediately(self):
        t = WallClockLimit(60)
        assert not t.should_stop(**state())

    def test_stops_after_elapsed(self):
        t = WallClockLimit(1e-9)
        import time

        time.sleep(0.001)
        assert t.should_stop(**state())

    def test_reset(self):
        t = WallClockLimit(0.05)
        import time

        time.sleep(0.06)
        assert t.should_stop(**state())
        t.reset()
        assert not t.should_stop(**state())


class TestNoImprovementLimit:
    def test_stall_counter(self):
        t = NoImprovementLimit(3)
        assert not t.should_stop(**state(iterations_since_improvement=2))
        assert t.should_stop(**state(iterations_since_improvement=3))


class TestAnyOf:
    def test_any_triggers(self):
        t = AnyOf(IterationLimit(10), ModeledTimeLimit(1.0))
        assert t.should_stop(**state(iteration=3, modeled_seconds=2.0))
        assert not t.should_stop(**state(iteration=3, modeled_seconds=0.5))

    def test_needs_conditions(self):
        with pytest.raises(ValueError):
            AnyOf()
