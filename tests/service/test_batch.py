"""End-to-end batch driver behavior: determinism, deadlines, backpressure."""

import pytest

from repro.errors import ManifestError
from repro.service import (
    ArtifactCache,
    SolveRequest,
    load_manifest,
    run_batch,
)
from repro.service.jobs import STATUS_EXPIRED, STATUS_REJECTED

pytestmark = pytest.mark.service


def synthetic_requests():
    """Six jobs over two synthetic instances — repeats exercise the cache."""
    sizes = (80, 110)
    return [
        SolveRequest(job_id=f"j{i}", n=sizes[i % 2], seed=sizes[i % 2])
        for i in range(6)
    ]


class TestDeterminism:
    def test_results_identical_across_worker_counts(self):
        runs = {}
        for workers in (1, 4):
            report = run_batch(synthetic_requests(), workers=workers,
                               cache=ArtifactCache())
            assert report.ok
            runs[workers] = [
                (r.job_id, r.status, r.final_length, r.canonical_length,
                 r.moves_applied, r.scans)
                for r in report.results
            ]
        assert runs[1] == runs[4]

    def test_cache_counts_independent_of_workers(self):
        # 2 distinct instances x (instance + tour + knn) = 6 misses;
        # 4 repeat jobs x (instance + tour) = 8 hits — regardless of
        # worker count, thanks to coalescing-as-hit accounting.
        for workers in (1, 3):
            cache = ArtifactCache()
            report = run_batch(synthetic_requests(), workers=workers,
                               cache=cache)
            assert report.ok
            assert cache.stats.misses == 6
            assert cache.stats.hits == 8

    def test_report_in_manifest_order(self):
        report = run_batch(synthetic_requests(), workers=4)
        assert [r.job_id for r in report.results] == [
            f"j{i}" for i in range(6)
        ]

    def test_matches_direct_solver(self):
        from repro.core.solver import TwoOptSolver
        from repro.tsplib.generators import generate_instance

        report = run_batch(
            [SolveRequest(job_id="solo", n=80, seed=80, return_tour=True)]
        )
        direct = TwoOptSolver(strategy="batch").solve(
            generate_instance(80, seed=80)
        )
        r = report.results[0]
        assert r.final_length == direct.final_length
        assert r.tour == [int(c) for c in direct.tour.order]


class TestFailureModes:
    def test_failed_job_does_not_sink_batch(self):
        reqs = [
            SolveRequest(job_id="ok", n=60, seed=1),
            SolveRequest(job_id="bad", file="data/no-such-file.tsp"),
        ]
        report = run_batch(reqs)
        assert not report.ok
        by_id = {r.job_id: r for r in report.results}
        assert by_id["ok"].status == "ok"
        assert by_id["bad"].status == "failed"
        assert by_id["bad"].error

    def test_expired_deadline_reported_not_run(self):
        # a deadline so small the job expires while queued behind another
        reqs = [SolveRequest(job_id="doomed", n=60, seed=1,
                             deadline_s=1e-9)]
        ticks = [0.0]

        def clock():
            # each call advances 10 "seconds": admission at t=0, the
            # worker's deadline check at t=10 — long past 1e-9
            now = ticks[0]
            ticks[0] += 10.0
            return now

        from repro.service.batch import iter_batch

        results = list(iter_batch(reqs, workers=1, clock=clock))
        assert results[0].status == STATUS_EXPIRED
        assert "deadline" in results[0].error

    def test_reject_when_full(self):
        reqs = [SolveRequest(job_id=f"r{i}", n=60, seed=1) for i in range(8)]
        report = run_batch(reqs, workers=1, queue_depth=1, on_full="reject")
        statuses = {r.status for r in report.results}
        assert STATUS_REJECTED in statuses
        rejected = [r for r in report.results if r.status == STATUS_REJECTED]
        assert all("queue at max depth" in r.error for r in rejected)
        # every job got exactly one result
        assert len(report.results) == 8

    def test_backpressure_completes_everything(self):
        reqs = [SolveRequest(job_id=f"w{i}", n=60, seed=1) for i in range(8)]
        report = run_batch(reqs, workers=2, queue_depth=1, on_full="wait")
        assert report.ok
        assert len(report.results) == 8

    def test_bad_on_full_rejected(self):
        with pytest.raises(ValueError, match="on_full"):
            run_batch([SolveRequest(n=60)], on_full="explode")


class TestManifest:
    def test_round_trip(self, tmp_path):
        m = tmp_path / "jobs.jsonl"
        m.write_text(
            "# comment line\n"
            '{"id": "a", "n": 64, "seed": 1}\n'
            "\n"
            '{"id": "b", "n": 72, "seed": 2, "deadline_s": 30}\n'
        )
        reqs = load_manifest(m)
        assert [r.job_id for r in reqs] == ["a", "b"]
        assert reqs[1].deadline_s == 30.0

    def test_bad_json_names_line(self, tmp_path):
        m = tmp_path / "jobs.jsonl"
        m.write_text('{"id": "a", "n": 64}\n{oops\n')
        with pytest.raises(ManifestError, match="jobs.jsonl:2"):
            load_manifest(m)

    def test_bad_field_names_line(self, tmp_path):
        m = tmp_path / "jobs.jsonl"
        m.write_text('{"id": "a", "n": 64, "velocity": 9}\n')
        with pytest.raises(ManifestError, match="jobs.jsonl:1.*velocity"):
            load_manifest(m)

    def test_empty_manifest_is_an_error(self, tmp_path):
        m = tmp_path / "jobs.jsonl"
        m.write_text("# nothing here\n")
        with pytest.raises(ManifestError, match="contains no jobs"):
            load_manifest(m)

    def test_missing_manifest_is_an_error(self, tmp_path):
        with pytest.raises(ManifestError, match="cannot read"):
            load_manifest(tmp_path / "nope.jsonl")
