"""Circuit-breaker state machine: open/half-open/probe transitions."""

import pytest

from repro.service.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerBoard,
    CircuitBreaker,
)

pytestmark = pytest.mark.service


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        b = CircuitBreaker("dev", failure_threshold=3, cooldown_s=10.0)
        for t in range(2):
            b.record_failure(float(t))
            assert b.state == STATE_CLOSED
        b.record_failure(2.0)
        assert b.state == STATE_OPEN
        assert b.transitions == [(STATE_CLOSED, STATE_OPEN, 2.0)]

    def test_success_resets_the_count(self):
        b = CircuitBreaker("dev", failure_threshold=2)
        b.record_failure(0.0)
        b.record_success(1.0)
        b.record_failure(2.0)
        assert b.state == STATE_CLOSED
        assert b.consecutive_failures == 1

    def test_open_blocks_until_cooldown_then_probes(self):
        b = CircuitBreaker("dev", failure_threshold=1, cooldown_s=10.0)
        b.record_failure(0.0)
        assert b.state == STATE_OPEN
        assert not b.allow(5.0)
        assert b.allow(10.0)  # the single half-open probe
        assert b.state == STATE_HALF_OPEN
        # a second job while the probe is in flight is still blocked
        assert not b.allow(11.0)

    def test_probe_success_closes(self):
        b = CircuitBreaker("dev", failure_threshold=1, cooldown_s=10.0)
        b.record_failure(0.0)
        assert b.allow(10.0)
        b.record_success(11.0)
        assert b.state == STATE_CLOSED
        assert b.allow(11.0)

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        b = CircuitBreaker("dev", failure_threshold=1, cooldown_s=10.0)
        b.record_failure(0.0)
        assert b.allow(10.0)
        b.record_failure(12.0)
        assert b.state == STATE_OPEN
        assert not b.allow(20.0)   # cooldown restarted at t=12
        assert b.allow(22.0)

    def test_silent_probe_is_reallowed(self):
        # a probe whose worker died never reports; after another
        # cooldown the breaker must allow a fresh probe, not wedge
        b = CircuitBreaker("dev", failure_threshold=1, cooldown_s=10.0)
        b.record_failure(0.0)
        assert b.allow(10.0)
        assert not b.allow(15.0)
        assert b.allow(20.0)
        assert b.state == STATE_HALF_OPEN

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker("dev", failure_threshold=0)


class TestBreakerBoard:
    def test_admit_counts_fast_fails_and_names_the_device(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, cooldown_s=10.0,
                             clock=clock)
        board.report(["d0"], ok=False, device_fault=True)
        assert board.admit(["d0"]) == "d0"
        assert board.admit(["d0"]) == "d0"
        assert board.fast_fails == 2
        assert board.opened == 1

    def test_manifest_failures_do_not_trip_breakers(self):
        board = BreakerBoard(failure_threshold=1, clock=FakeClock())
        board.report(["d0"], ok=False, device_fault=False)
        assert board.admit(["d0"]) is None
        assert board.opened == 0

    def test_multi_device_pool_charges_every_member(self):
        board = BreakerBoard(failure_threshold=1, clock=FakeClock())
        board.report(["d0", "d1"], ok=False, device_fault=True)
        snap = board.as_dict()
        assert snap["devices"]["d0"]["state"] == STATE_OPEN
        assert snap["devices"]["d1"]["state"] == STATE_OPEN
        assert snap["opened"] == 2

    def test_probe_flows_through_admit_and_report(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, cooldown_s=10.0,
                             clock=clock)
        board.report(["d0"], ok=False, device_fault=True)
        assert board.admit(["d0"]) == "d0"
        clock.now = 10.0
        assert board.admit(["d0"]) is None  # the probe
        board.report(["d0"], ok=True, device_fault=False)
        assert board.admit(["d0"]) is None
        assert board.as_dict()["devices"]["d0"]["state"] == STATE_CLOSED

    def test_blocked_pool_claims_no_phantom_probe(self):
        # d0 is past cooldown (probe-ready), d1 is still open: admitting
        # a job touching both must NOT consume d0's probe slot, or d0
        # stays blocked a whole extra cooldown for a job that never ran
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, cooldown_s=10.0,
                             clock=clock)
        board.report(["d0"], ok=False, device_fault=True)
        clock.now = 8.0
        board.report(["d1"], ok=False, device_fault=True)
        clock.now = 12.0  # d0 cooled down, d1 has not
        assert board.admit(["d0", "d1"]) == "d1"
        snap = board.as_dict()["devices"]
        assert snap["d0"]["state"] == STATE_OPEN  # probe not claimed
        # d0's probe is still available right now, not a cooldown later
        assert board.admit(["d0"]) is None
        assert board.as_dict()["devices"]["d0"]["state"] == STATE_HALF_OPEN
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, cooldown_s=5.0,
                             clock=clock)
        board.report(["d0"], ok=False, device_fault=True)
        clock.now = 5.0
        board.admit(["d0"])
        board.report(["d0"], ok=True, device_fault=False)
        trans = board.transitions()
        assert [(d, frm, to) for d, frm, to, _t in trans] == [
            ("d0", STATE_CLOSED, STATE_OPEN),
            ("d0", STATE_OPEN, STATE_HALF_OPEN),
            ("d0", STATE_HALF_OPEN, STATE_CLOSED),
        ]
