"""ArtifactCache accounting: hits, misses, eviction, coalescing."""

import threading
import time

import numpy as np
import pytest

from repro.service.cache import ArtifactCache
from repro.service.jobs import SolveRequest

pytestmark = pytest.mark.service


def blob(nbytes):
    return np.zeros(nbytes, dtype=np.uint8)


def put(cache, key, nbytes=100, kind="instance"):
    return cache.get_or_create(kind, (key,), lambda: blob(nbytes),
                               lambda v: v.nbytes)


class TestAccounting:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        a1 = put(cache, "a")
        a2 = put(cache, "a")
        assert a1 is a2
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert cache.stats.by_kind["instance"] == {"hits": 1, "misses": 1}

    def test_distinct_keys_and_kinds_do_not_collide(self):
        cache = ArtifactCache()
        put(cache, "a", kind="instance")
        put(cache, "a", kind="knn")
        put(cache, "b", kind="instance")
        assert cache.stats.misses == 3 and cache.stats.hits == 0
        assert len(cache) == 3

    def test_snapshot_reports_occupancy(self):
        cache = ArtifactCache(max_bytes=10_000)
        put(cache, "a", nbytes=300)
        snap = cache.snapshot()
        assert snap["entries"] == 1
        assert snap["total_bytes"] == 300
        assert snap["max_bytes"] == 10_000

    def test_job_events_capture_per_thread(self):
        cache = ArtifactCache()
        with cache.job_events() as events:
            put(cache, "a")
            put(cache, "a")
        assert events == {"instance.miss": 1, "instance.hit": 1}
        # outside the context, lookups are not captured
        put(cache, "a")
        assert events == {"instance.miss": 1, "instance.hit": 1}


class TestEviction:
    def test_lru_eviction_under_pressure(self):
        cache = ArtifactCache(max_bytes=250)
        put(cache, "a", nbytes=100)
        put(cache, "b", nbytes=100)
        put(cache, "a")                      # touch: b is now LRU
        put(cache, "c", nbytes=100)          # 300 > 250 -> evict b
        assert cache.stats.evictions == 1
        assert cache.total_bytes == 200
        put(cache, "a")
        put(cache, "c")
        assert cache.stats.misses == 3       # a, b, c initial builds only
        put(cache, "b")                      # evicted -> rebuilt
        assert cache.stats.misses == 4

    def test_oversized_entry_still_caches(self):
        cache = ArtifactCache(max_bytes=50)
        put(cache, "big", nbytes=400)
        assert len(cache) == 1
        put(cache, "big")
        assert cache.stats.hits == 1


class TestFailuresAndCoalescing:
    def test_failing_builder_leaves_no_entry(self):
        cache = ArtifactCache()

        def explode():
            raise RuntimeError("parse error")

        for _ in range(2):
            with pytest.raises(RuntimeError, match="parse error"):
                cache.get_or_create("instance", ("bad",), explode, len)
        assert len(cache) == 0
        assert cache.stats.misses == 2      # sequential retries re-miss

    def test_concurrent_same_key_coalesces(self):
        cache = ArtifactCache()
        release = threading.Event()
        builds = []

        def slow_build():
            release.wait(5.0)
            builds.append(1)
            return blob(64)

        results = []

        def lookup():
            results.append(cache.get_or_create(
                "knn", ("k",), slow_build, lambda v: v.nbytes))

        threads = [threading.Thread(target=lookup) for _ in range(4)]
        for t in threads:
            t.start()
        # let every thread reach the cache before the build completes
        deadline = time.monotonic() + 5.0
        while (cache.stats.hits + cache.stats.misses < 4
               and time.monotonic() < deadline):
            time.sleep(0.001)
        release.set()
        for t in threads:
            t.join(5.0)
        assert builds == [1]                 # exactly one build ran
        assert all(r is results[0] for r in results)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 3
        assert cache.stats.coalesced == 3


class TestArtifactKeys:
    def test_synthetic_key_is_n_and_seed(self):
        a = ArtifactCache.instance_key(SolveRequest(n=100, seed=1))
        b = ArtifactCache.instance_key(SolveRequest(n=100, seed=1, job_id="other"))
        c = ArtifactCache.instance_key(SolveRequest(n=100, seed=2))
        assert a == b != c

    def test_file_key_tracks_mtime(self, tmp_path):
        p = tmp_path / "t.tsp"
        p.write_text("NAME: t\n")
        key1 = ArtifactCache.instance_key(SolveRequest(file=str(p)))
        p.write_text("NAME: t2\nCOMMENT: edited\n")
        key2 = ArtifactCache.instance_key(SolveRequest(file=str(p)))
        assert key1 != key2

    def test_greedy_tour_key_ignores_seed(self):
        from repro.tsplib.generators import generate_instance

        cache = ArtifactCache()
        inst = generate_instance(60, seed=0)
        key = ("synthetic", 60, 0)
        t1 = cache.initial_tour(SolveRequest(n=60, seed=1), inst, key)
        t2 = cache.initial_tour(SolveRequest(n=60, seed=2), inst, key)
        assert t1 is t2
        # random construction is seed-sensitive: different entries
        r1 = cache.initial_tour(
            SolveRequest(n=60, seed=1, initial="random"), inst, key)
        r2 = cache.initial_tour(
            SolveRequest(n=60, seed=2, initial="random"), inst, key)
        assert not np.array_equal(r1, r2)

    def test_greedy_tour_populates_knn(self):
        from repro.tsplib.generators import generate_instance

        cache = ArtifactCache()
        inst = generate_instance(60, seed=0)
        key = ("synthetic", 60, 0)
        cache.initial_tour(SolveRequest(n=60), inst, key)
        assert cache.stats.by_kind["knn"] == {"hits": 0, "misses": 1}
        assert cache.stats.by_kind["tour"] == {"hits": 0, "misses": 1}
