"""Chaos harness properties: one result per job, resume convergence.

These are the tests the whole self-healing layer answers to. Worker
kills are scheduled deterministically (a :class:`ChaosPlan`), journals
are torn the way ``kill -9`` tears them, and the invariants must hold:
every admitted job gets exactly one result (no hangs, no duplicates),
and a resumed run equals the uninterrupted one on every non-wall field.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultSpecError
from repro.service import SolveRequest, run_batch
from repro.service.chaos import (
    ChaosKill,
    ChaosMonkey,
    ChaosPlan,
    as_chaos_plan,
    corrupt_journal_tail,
)
from repro.service.journal import read_journal

pytestmark = [pytest.mark.service, pytest.mark.chaos]

#: fields legitimately differing between otherwise-identical runs: wall
#: clocks, worker assignment, and cache attribution (a recovered job
#: re-runs against whatever the cache already holds)
VARIABLE_FIELDS = ("queue_wait_s", "worker", "wall_seconds", "cache")


def reqs(count, n=40):
    return [SolveRequest(job_id=f"j{i}", n=n, seed=1 + i)
            for i in range(count)]


def stripped(report):
    """Result dicts in index order with wall-clock fields removed."""
    out = []
    for r in report.results:
        d = r.as_dict()
        for key in VARIABLE_FIELDS:
            d.pop(key, None)
        out.append(d)
    return out


def journal_prefix(src, dst, upto_finished):
    """Copy *src* up to its ``upto_finished``-th finished event.

    ``0`` keeps only the admission prologue — the journal an admission-
    complete but work-free interruption leaves behind. Always cuts at an
    event boundary (whole lines).
    """
    lines = src.read_text().splitlines()
    if upto_finished == 0:
        keep = []
        for line in lines:
            if json.loads(line)["event"] not in ("batch", "admitted"):
                break
            keep.append(line)
    else:
        keep = []
        count = 0
        for line in lines:
            keep.append(line)
            if json.loads(line)["event"] == "finished":
                count += 1
                if count == upto_finished:
                    break
    dst.write_text("\n".join(keep) + "\n")
    return dst


class TestPlanGrammar:
    def test_parse_kill_and_rate_clauses(self):
        plan = ChaosPlan.parse(
            "kill:worker=0,pull=2;kill:worker=1,pull=3,phase=end;"
            "rate:kill=0.25,seed=7")
        assert plan.kills == (ChaosKill(0, 2), ChaosKill(1, 3, "end"))
        assert plan.kill_rate == 0.25 and plan.seed == 7
        assert not plan.is_empty

    def test_as_chaos_plan_normalizes(self):
        assert as_chaos_plan(None) is None
        plan = ChaosPlan(kills=(ChaosKill(0, 1),))
        assert as_chaos_plan(plan) is plan
        assert as_chaos_plan("kill:worker=0,pull=1").kills == (ChaosKill(0, 1),)

    def test_empty_plan_is_empty(self):
        assert ChaosPlan().is_empty

    def test_bad_specs_rejected(self):
        with pytest.raises(FaultSpecError, match="empty chaos spec"):
            ChaosPlan.parse("  ")
        with pytest.raises(FaultSpecError, match="unknown chaos clause"):
            ChaosPlan.parse("explode:worker=0")
        with pytest.raises(FaultSpecError, match="unknown keys"):
            ChaosPlan.parse("kill:worker=0,pull=1,how=hard")
        with pytest.raises(FaultSpecError, match="phase"):
            ChaosPlan.parse("kill:worker=0,pull=1,phase=middle")
        with pytest.raises(FaultSpecError, match="pull ordinal"):
            ChaosKill(worker=0, pull=0)
        with pytest.raises(FaultSpecError, match="rate"):
            ChaosPlan(kill_rate=1.5)


class TestMonkey:
    def test_planned_kill_fires_at_exact_coordinates(self):
        monkey = ChaosPlan.parse("kill:worker=1,pull=2,phase=end").monkey()
        assert not monkey.should_kill(1, 2, "start")
        assert not monkey.should_kill(0, 2, "end")
        assert monkey.should_kill(1, 2, "end")
        assert monkey.kills_delivered == 1

    def test_rate_kills_are_deterministic_per_slot(self):
        plan = ChaosPlan(kill_rate=0.3, seed=42)
        draws = [
            [plan.monkey().should_kill(w, p, "start") for w in range(3)
             for p in range(1, 15)]
            for _ in range(2)
        ]
        # same plan, same coordinates -> identical kill schedule
        assert draws[0] == draws[1]
        assert any(draws[0])

    def test_rate_never_fires_on_phase_end(self):
        monkey = ChaosPlan(kill_rate=1.0, seed=0).monkey()
        assert not monkey.should_kill(0, 1, "end")
        assert monkey.should_kill(0, 1, "start")


KILL_SCHEDULES = [
    "",
    "kill:worker=0,pull=1",
    "kill:worker=0,pull=2,phase=end",
    "kill:worker=0,pull=1;kill:worker=1,pull=1",
    "kill:worker=0,pull=1;kill:worker=0,pull=3;kill:worker=1,pull=2",
]


class TestOneResultPerJob:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("schedule", KILL_SCHEDULES)
    def test_exactly_one_result_per_job(self, workers, schedule):
        jobs = reqs(5)
        report = run_batch(jobs, workers=workers,
                           chaos=schedule or None,
                           poll_interval_s=0.01)
        ids = [r.job_id for r in report.results]
        assert sorted(ids) == sorted(j.job_id for j in jobs)
        assert len(ids) == len(set(ids))
        assert report.abandoned == 0

    @given(
        workers=st.integers(min_value=1, max_value=4),
        kills=st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 6),
                      st.sampled_from(["start", "end"])),
            max_size=3, unique=True),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_no_schedule_breaks_the_invariant(self, workers, kills):
        plan = ChaosPlan(kills=tuple(
            ChaosKill(worker=w, pull=p, phase=ph) for w, p, ph in kills))
        jobs = reqs(4)
        report = run_batch(jobs, workers=workers, chaos=plan,
                           poll_interval_s=0.01)
        ids = sorted(r.job_id for r in report.results)
        assert ids == sorted(j.job_id for j in jobs)
        assert report.abandoned == 0

    def test_chaos_results_match_calm_results(self):
        # recovery must not change any modeled field: kills only cost
        # wall time, never answers
        calm = run_batch(reqs(4), workers=1)
        stormy = run_batch(reqs(4), workers=1,
                           chaos="kill:worker=0,pull=1;kill:worker=0,pull=4,phase=end",
                           poll_interval_s=0.01)
        assert stormy.supervisor["crashes"] == 2
        assert stripped(stormy) == stripped(calm)


class TestResumeConvergence:
    def run_baseline(self, tmp_path, count=4):
        journal = tmp_path / "full.journal"
        report = run_batch(reqs(count), workers=1, journal_path=journal,
                           poll_interval_s=0.01)
        assert report.ok
        return report, journal

    @pytest.mark.parametrize("upto_finished", [0, 1, 2, 4])
    def test_resume_equals_uninterrupted(self, tmp_path, upto_finished):
        baseline, journal = self.run_baseline(tmp_path)
        cut = journal_prefix(journal, tmp_path / "cut.journal",
                             upto_finished)
        resumed = run_batch(resume_from=cut, poll_interval_s=0.01)
        assert resumed.ok
        assert resumed.replayed == upto_finished
        assert stripped(resumed) == stripped(baseline)
        # the resumed journal is itself complete: nothing left pending
        replay = read_journal(cut)
        assert replay.pending == []
        assert replay.cuts[-1] == "complete"

    @pytest.mark.parametrize("mode", ["truncate", "garbage", "flip"])
    def test_resume_survives_torn_tail(self, tmp_path, mode):
        baseline, journal = self.run_baseline(tmp_path)
        cut = journal_prefix(journal, tmp_path / "torn.journal", 2)
        corrupt_journal_tail(cut, mode=mode, seed=3)
        replay = read_journal(cut)
        assert replay.dropped_lines == 1
        resumed = run_batch(resume_from=cut, poll_interval_s=0.01)
        assert resumed.ok
        assert stripped(resumed) == stripped(baseline)
        # resume repaired the tail before appending: the journal must
        # still be fully readable — no interior corruption, nothing
        # pending — and a *second* resume must work too
        replay = read_journal(cut)
        assert replay.dropped_lines == 0
        assert replay.pending == []
        assert replay.cuts[-1] == "complete"
        again = run_batch(resume_from=cut, poll_interval_s=0.01)
        assert again.ok and again.replayed == 4
        assert stripped(again) == stripped(baseline)

    @pytest.mark.parametrize("mode", ["truncate", "garbage", "flip"])
    def test_torn_tail_resume_interrupted_again_still_resumes(
            self, tmp_path, mode):
        # tear the tail, resume but abort that resume, then resume once
        # more: the documented drain → resume → drain → resume flow
        baseline, journal = self.run_baseline(tmp_path)
        cut = journal_prefix(journal, tmp_path / "torn.journal", 1)
        corrupt_journal_tail(cut, mode=mode, seed=3)

        def bail(result):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_batch(resume_from=cut, on_result=bail,
                      poll_interval_s=0.01)
        replay = read_journal(cut)  # journal must still be readable
        assert replay.cuts[-1] == "aborted"
        final = run_batch(resume_from=cut, poll_interval_s=0.01)
        assert final.ok
        assert stripped(final) == stripped(baseline)

    def test_predrained_run_resumes_to_completion(self, tmp_path):
        import threading

        baseline = run_batch(reqs(4), workers=1)
        journal = tmp_path / "drained.journal"
        stop = threading.Event()
        stop.set()  # drain before the first admission
        first = run_batch(reqs(4), workers=1, journal_path=journal,
                          stop=stop, poll_interval_s=0.01)
        assert first.drained and not first.ok
        assert first.results == []
        replay = read_journal(journal)
        assert replay.pending == [0, 1, 2, 3]  # admitted up front
        assert replay.cuts == ["drained"]
        resumed = run_batch(resume_from=journal, poll_interval_s=0.01)
        assert resumed.ok and resumed.replayed == 0
        assert stripped(resumed) == stripped(baseline)

    def test_rejected_jobs_stay_pending_for_resume(self, tmp_path):
        # a capacity rejection is transient: it must not be journaled as
        # finished, or a queue hiccup becomes a permanent non-result
        journal = tmp_path / "reject.journal"
        jobs = [SolveRequest(job_id=f"r{i}", n=60, seed=1)
                for i in range(8)]
        first = run_batch(jobs, workers=1, queue_depth=1,
                          on_full="reject", journal_path=journal,
                          poll_interval_s=0.01)
        rejected = sorted(r.index for r in first.results
                          if r.status == "rejected")
        assert rejected  # this config reliably overflows the queue
        replay = read_journal(journal)
        assert replay.pending == rejected
        assert replay.cuts[-1] == "incomplete"
        resumed = run_batch(resume_from=journal, poll_interval_s=0.01)
        assert resumed.ok
        assert len(resumed.results) == 8
        assert {r.status for r in resumed.results} == {"ok"}
        assert read_journal(journal).pending == []

    def test_chaos_kills_leave_a_resumable_journal(self, tmp_path):
        # a run that needed recovery still journals one finished event
        # per job; a resume of its complete journal replays everything
        journal = tmp_path / "stormy.journal"
        report = run_batch(reqs(4), workers=1, journal_path=journal,
                           chaos="kill:worker=0,pull=2",
                           poll_interval_s=0.01)
        assert report.ok
        replay = read_journal(journal)
        assert replay.pending == []
        assert len(replay.finished) == 4


class TestCorruptionTool:
    def test_unknown_mode_rejected(self, tmp_path):
        p = tmp_path / "j.journal"
        p.write_text("line\n")
        with pytest.raises(ValueError, match="unknown corruption mode"):
            corrupt_journal_tail(p, mode="shred")

    def test_empty_file_is_a_noop(self, tmp_path):
        p = tmp_path / "empty.journal"
        p.write_text("")
        corrupt_journal_tail(p, mode="flip")
        assert p.read_bytes() == b""
