"""CLI round-trip for ``repro batch`` on the bundled TSPLIB data."""

import json
from pathlib import Path

import pytest

from repro.cli import main

pytestmark = pytest.mark.service

REPO_ROOT = Path(__file__).resolve().parents[2]
DATA = REPO_ROOT / "data" / "sample52-uniform.tsp"


def write_manifest(tmp_path, lines):
    m = tmp_path / "jobs.jsonl"
    m.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
    return m


class TestBatchCommand:
    def test_round_trip_with_cache_hits(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": "a", "file": str(DATA)},
            {"id": "b", "file": str(DATA)},   # repeat -> cache hits
            {"id": "c", "n": 64, "seed": 3},
        ])
        assert main(["batch", str(m), "--workers", "2"]) == 0
        out, err = capsys.readouterr()
        results = [json.loads(line) for line in out.splitlines() if line]
        assert len(results) == 3
        by_id = {r["id"]: r for r in results}
        assert all(r["status"] == "ok" for r in results)
        assert by_id["a"]["final_length"] == by_id["b"]["final_length"]
        # repeated file instance must hit the artifact cache
        assert "cache" in err
        hits = int(err.split("cache ")[1].split(" hit")[0])
        assert hits >= 1
        assert "3 job(s)" in err

    def test_tours_match_sequential_solve(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": "a", "file": str(DATA), "return_tour": True},
        ])
        assert main(["batch", str(m)]) == 0
        batch_out = capsys.readouterr().out
        batch_result = json.loads(batch_out.splitlines()[0])

        assert main(["solve", "--file", str(DATA), "--json"]) == 0
        solo = json.loads(capsys.readouterr().out)
        assert batch_result["final_length"] == solo["final_length"]
        assert batch_result["canonical_length"] == solo["canonical_length"]
        assert batch_result["moves_applied"] == solo["moves_applied"]

        # the tour itself matches the solver API run the same way
        from repro.core.solver import TwoOptSolver
        from repro.tsplib.parser import load_tsplib

        direct = TwoOptSolver(strategy="batch").solve(load_tsplib(DATA))
        assert batch_result["tour"] == [int(c) for c in direct.tour.order]

    def test_json_report_document(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [{"id": "a", "n": 64, "seed": 1}])
        assert main(["batch", str(m), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["jobs"] == 1
        assert report["counts"] == {"ok": 1}
        assert report["cache"]["misses"] >= 1

    def test_failing_job_exits_1(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": "good", "n": 64, "seed": 1},
            {"id": "bad", "file": str(tmp_path / "ghost.tsp")},
        ])
        assert main(["batch", str(m)]) == 1
        out, _ = capsys.readouterr()
        statuses = {json.loads(l)["id"]: json.loads(l)["status"]
                    for l in out.splitlines() if l}
        assert statuses == {"good": "ok", "bad": "failed"}

    def test_bad_manifest_exits_2(self, tmp_path, capsys):
        m = tmp_path / "jobs.jsonl"
        m.write_text('{"n": 64, "warp_factor": 9}\n')
        assert main(["batch", str(m)]) == 2
        assert "warp_factor" in capsys.readouterr().err

    def test_trace_out_has_worker_lanes(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": f"j{i}", "n": 64, "seed": 1} for i in range(4)
        ])
        trace = tmp_path / "trace.json"
        assert main(["batch", str(m), "--workers", "2",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        jobs = [e for e in events if e.get("name") == "service.job"]
        assert len(jobs) == 4
        lanes = {e["args"]["track"] for e in jobs if "track" in e.get("args", {})}
        names = {e["args"]["name"] for e in events
                 if e.get("name") == "thread_name"}
        assert any(n.startswith("worker#") for n in names) or any(
            l.startswith("worker#") for l in lanes)


class TestRobustnessFlags:
    def test_journal_written_and_resume_replays(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": f"j{i}", "n": 64, "seed": i} for i in range(3)
        ])
        journal = tmp_path / "run.journal"
        assert main(["batch", str(m), "--journal", str(journal)]) == 0
        capsys.readouterr()
        events = [json.loads(line)["event"]
                  for line in journal.read_text().splitlines()]
        assert events[0] == "batch"
        assert events.count("admitted") == 3
        assert events.count("finished") == 3
        assert events[-1] == "cut"

        # resuming a complete journal replays every result verbatim
        assert main(["batch", "--resume-journal", str(journal)]) == 0
        out, _ = capsys.readouterr()
        replayed = [json.loads(line) for line in out.splitlines() if line]
        assert sorted(r["id"] for r in replayed) == ["j0", "j1", "j2"]
        assert all(r["status"] == "ok" for r in replayed)

    def test_manifest_and_resume_conflict_exits_2(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [{"id": "a", "n": 64}])
        assert main(["batch", str(m),
                     "--resume-journal", str(tmp_path / "j")]) == 2
        assert "not both" in capsys.readouterr().err

    def test_neither_manifest_nor_resume_exits_2(self, capsys):
        assert main(["batch"]) == 2
        assert "needs a MANIFEST" in capsys.readouterr().err

    def test_missing_resume_journal_exits_2(self, tmp_path, capsys):
        assert main(["batch", "--resume-journal",
                     str(tmp_path / "ghost.journal")]) == 2
        assert "cannot read journal" in capsys.readouterr().err

    def test_bad_chaos_spec_exits_2(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [{"id": "a", "n": 64}])
        assert main(["batch", str(m), "--chaos", "explode:now=1"]) == 2
        assert "chaos" in capsys.readouterr().err

    def test_poison_job_quarantine_exits_6(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": f"j{i}", "n": 64, "seed": i} for i in range(3)
        ])
        journal = tmp_path / "run.journal"
        # slot 0's pulls 1 and 4 are the same requeued job: poison
        assert main(["batch", str(m), "--workers", "1",
                     "--journal", str(journal),
                     "--chaos", "kill:worker=0,pull=1;kill:worker=0,pull=4",
                     ]) == 6
        out, err = capsys.readouterr()
        statuses = [json.loads(l)["status"] for l in out.splitlines() if l]
        assert statuses.count("quarantined") == 1
        assert statuses.count("ok") == 2
        assert "quarantined" in err
        sidecar = Path(str(journal) + ".quarantine.jsonl")
        assert sidecar.exists()
        assert len(sidecar.read_text().splitlines()) == 1

    def test_breaker_fast_fails_open_device(self, tmp_path, capsys):
        # every job hard-drops its only device; after the first real
        # failure the breaker opens and the rest fail fast
        m = write_manifest(tmp_path, [
            {"id": f"j{i}", "n": 64, "seed": i,
             "inject_faults": "dropout:device=0,after=0", "retries": 1}
            for i in range(3)
        ])
        assert main(["batch", str(m), "--workers", "1",
                     "--breaker-failures", "1"]) == 1
        out, _ = capsys.readouterr()
        errors = [json.loads(l)["error"] for l in out.splitlines() if l]
        assert len(errors) == 3
        assert sum("circuit breaker open" in e for e in errors) == 2

    def test_breaker_zero_disables(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": f"j{i}", "n": 64, "seed": i,
             "inject_faults": "dropout:device=0,after=0", "retries": 1}
            for i in range(3)
        ])
        assert main(["batch", str(m), "--workers", "1",
                     "--breaker-failures", "0"]) == 1
        out, _ = capsys.readouterr()
        errors = [json.loads(l)["error"] for l in out.splitlines() if l]
        assert not any("circuit breaker" in e for e in errors)


class TestGracefulDrain:
    def test_sigterm_drains_exit_5_then_resume_completes(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time

        m = write_manifest(tmp_path, [
            {"id": f"j{i}", "n": 300, "seed": i} for i in range(40)
        ])
        journal = tmp_path / "run.journal"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            # a shallow queue paces admissions, so the stop signal still
            # has admissions left to cut (a full-depth queue would have
            # admitted everything up front and completed normally)
            [sys.executable, "-m", "repro.cli", "batch", str(m),
             "--journal", str(journal), "--workers", "1",
             "--queue-depth", "2"],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            # wait for the first finished event, then ask for the drain
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if journal.exists() and b'"finished"' in journal.read_bytes():
                    break
                time.sleep(0.02)
            else:
                pytest.fail("batch never finished a single job")
            proc.send_signal(signal.SIGTERM)
            _out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 5, err.decode()
        assert b"draining" in err
        assert b"resume with --resume-journal" in err

        # the journal records the cut; a resume finishes the batch
        events = [json.loads(line) for line in
                  journal.read_text().splitlines()]
        cuts = [e for e in events if e["event"] == "cut"]
        assert cuts and cuts[-1]["reason"] == "drained"
        assert main(["batch", "--resume-journal", str(journal)]) == 0
        finished = {e["index"] for e in
                    [json.loads(line) for line in
                     journal.read_text().splitlines()]
                    if e["event"] == "finished"}
        assert finished == set(range(40))


class TestBatchObservability:
    """The --events / --metrics-out / --slo live-observability flags."""

    def test_events_file_is_ordered_jsonl(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": "a", "n": 64, "seed": 1},
            {"id": "b", "n": 64, "seed": 1},
        ])
        events_path = tmp_path / "events.jsonl"
        assert main(["batch", str(m), "--workers", "2",
                     "--events", str(events_path)]) == 0
        err = capsys.readouterr().err
        events = [json.loads(line) for line in
                  events_path.read_text().splitlines()]
        assert [e["seq"] for e in events] == list(range(len(events)))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "batch.begin"
        assert kinds[-1] == "batch.end"
        assert kinds.count("job.finished") == 2
        assert "event(s) published" in err
        assert "all SLOs ok" in err

    def test_events_stdout_interleaves_with_results(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [{"id": "a", "n": 64, "seed": 1}])
        assert main(["batch", str(m), "--events", "-"]) == 0
        out = capsys.readouterr().out
        lines = [json.loads(line) for line in out.splitlines() if line]
        assert any(line.get("kind") == "batch.end" for line in lines)
        assert any(line.get("status") == "ok" for line in lines)

    def test_metrics_out_and_custom_slo(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [{"id": "a", "n": 64, "seed": 1}])
        metrics = tmp_path / "metrics.prom"
        assert main(["batch", str(m), "--metrics-out", str(metrics),
                     "--slo", "p99:service.queue_wait<=60"]) == 0
        assert "repro_service_jobs_ok_total 1" in metrics.read_text()
        assert "metrics snapshot" in capsys.readouterr().err

    def test_bad_slo_spec_exits_2(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [{"id": "a", "n": 64, "seed": 1}])
        assert main(["batch", str(m), "--slo", "p42:nope"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_chaos_writes_flight_sidecar_next_to_journal(self, tmp_path,
                                                         capsys):
        from repro.service import flight_path_for

        m = write_manifest(tmp_path, [
            {"id": f"c{i}", "n": 64, "seed": i} for i in range(4)
        ])
        journal = tmp_path / "run.jsonl"
        code = main(["batch", str(m), "--workers", "1",
                     "--journal", str(journal),
                     "--chaos", "kill:worker=0,pull=2",
                     "--events", str(tmp_path / "ev.jsonl")])
        assert code == 0
        err = capsys.readouterr().err
        sidecar = flight_path_for(journal)
        assert sidecar.exists()
        assert "flight recordings written to" in err
