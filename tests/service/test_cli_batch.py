"""CLI round-trip for ``repro batch`` on the bundled TSPLIB data."""

import json
from pathlib import Path

import pytest

from repro.cli import main

pytestmark = pytest.mark.service

DATA = Path(__file__).resolve().parents[2] / "data" / "sample52-uniform.tsp"


def write_manifest(tmp_path, lines):
    m = tmp_path / "jobs.jsonl"
    m.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
    return m


class TestBatchCommand:
    def test_round_trip_with_cache_hits(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": "a", "file": str(DATA)},
            {"id": "b", "file": str(DATA)},   # repeat -> cache hits
            {"id": "c", "n": 64, "seed": 3},
        ])
        assert main(["batch", str(m), "--workers", "2"]) == 0
        out, err = capsys.readouterr()
        results = [json.loads(line) for line in out.splitlines() if line]
        assert len(results) == 3
        by_id = {r["id"]: r for r in results}
        assert all(r["status"] == "ok" for r in results)
        assert by_id["a"]["final_length"] == by_id["b"]["final_length"]
        # repeated file instance must hit the artifact cache
        assert "cache" in err
        hits = int(err.split("cache ")[1].split(" hit")[0])
        assert hits >= 1
        assert "3 job(s)" in err

    def test_tours_match_sequential_solve(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": "a", "file": str(DATA), "return_tour": True},
        ])
        assert main(["batch", str(m)]) == 0
        batch_out = capsys.readouterr().out
        batch_result = json.loads(batch_out.splitlines()[0])

        assert main(["solve", "--file", str(DATA), "--json"]) == 0
        solo = json.loads(capsys.readouterr().out)
        assert batch_result["final_length"] == solo["final_length"]
        assert batch_result["canonical_length"] == solo["canonical_length"]
        assert batch_result["moves_applied"] == solo["moves_applied"]

        # the tour itself matches the solver API run the same way
        from repro.core.solver import TwoOptSolver
        from repro.tsplib.parser import load_tsplib

        direct = TwoOptSolver(strategy="batch").solve(load_tsplib(DATA))
        assert batch_result["tour"] == [int(c) for c in direct.tour.order]

    def test_json_report_document(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [{"id": "a", "n": 64, "seed": 1}])
        assert main(["batch", str(m), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["jobs"] == 1
        assert report["counts"] == {"ok": 1}
        assert report["cache"]["misses"] >= 1

    def test_failing_job_exits_1(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": "good", "n": 64, "seed": 1},
            {"id": "bad", "file": str(tmp_path / "ghost.tsp")},
        ])
        assert main(["batch", str(m)]) == 1
        out, _ = capsys.readouterr()
        statuses = {json.loads(l)["id"]: json.loads(l)["status"]
                    for l in out.splitlines() if l}
        assert statuses == {"good": "ok", "bad": "failed"}

    def test_bad_manifest_exits_2(self, tmp_path, capsys):
        m = tmp_path / "jobs.jsonl"
        m.write_text('{"n": 64, "warp_factor": 9}\n')
        assert main(["batch", str(m)]) == 2
        assert "warp_factor" in capsys.readouterr().err

    def test_trace_out_has_worker_lanes(self, tmp_path, capsys):
        m = write_manifest(tmp_path, [
            {"id": f"j{i}", "n": 64, "seed": 1} for i in range(4)
        ])
        trace = tmp_path / "trace.json"
        assert main(["batch", str(m), "--workers", "2",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        jobs = [e for e in events if e.get("name") == "service.job"]
        assert len(jobs) == 4
        lanes = {e["args"]["track"] for e in jobs if "track" in e.get("args", {})}
        names = {e["args"]["name"] for e in events
                 if e.get("name") == "thread_name"}
        assert any(n.startswith("worker#") for n in names) or any(
            l.startswith("worker#") for l in lanes)
