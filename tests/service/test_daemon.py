"""Always-on daemon tests: socket protocol, fair-share scheduling,
preemption/resume, autoscaling, drain, and the deadline scan-boundary
stop that doubles as the daemon's preemption primitive."""

import contextlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service import (
    DaemonClient,
    JournalWriter,
    SolveDaemon,
    SolveRequest,
    read_journal,
    run_batch,
)
from repro.service.cache import ArtifactCache
from repro.service.jobs import (
    STATUS_CANCELED,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_PREEMPTED,
)
from repro.service.pool import run_request
from repro.service.protocol import decode_message, encode_message

pytestmark = [pytest.mark.service, pytest.mark.daemon]

TINY = {"n": 40, "seed": 1, "device": "gtx680-cuda"}
BIG = {"n": 900, "seed": 3, "device": "gtx680-cuda"}


@contextlib.contextmanager
def running_daemon(tmp_path, **kwargs):
    """A live daemon on a tmp socket; always drained on the way out."""
    sock = str(tmp_path / "daemon.sock")
    kwargs.setdefault("workers", 2)
    if "checkpoint_dir" in kwargs:
        os.makedirs(kwargs["checkpoint_dir"], exist_ok=True)
    daemon = SolveDaemon(sock, **kwargs)
    exit_code = {}
    thread = threading.Thread(
        target=lambda: exit_code.update(code=daemon.serve()), daemon=True)
    thread.start()
    assert daemon.ready.wait(10), "daemon never became ready"
    try:
        yield daemon, sock, exit_code
    finally:
        if thread.is_alive():
            try:
                with DaemonClient(sock, timeout=5.0) as client:
                    client.drain()
            except ServiceError:
                pass
        thread.join(timeout=60)
        assert not thread.is_alive(), "daemon failed to drain"


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestProtocol:
    def test_submit_wait_status_lifecycle(self, tmp_path):
        with running_daemon(tmp_path) as (daemon, sock, _):
            with DaemonClient(sock, tenant="alice") as c:
                hello = c.hello("alice")
                assert hello["server"] == "repro-daemon"
                assert hello["protocol"] == 1
                job_id = c.submit(TINY)
                result = c.wait(job_id, timeout=30)
                assert result["status"] == STATUS_OK
                assert result["final_length"] < result["initial_length"]
                st = c.status(job_id)
                assert st["state"] == "done"
                assert st["tenant"] == "alice"
                assert st["result"]["final_length"] == result["final_length"]
                top = c.status()
                assert top["jobs"]["submitted"] == 1
                assert top["jobs"]["by_status"] == {"ok": 1}
                assert top["queue"]["dispatched"] == {"alice": 1}

    def test_malformed_and_unknown_ops_keep_connection_usable(self, tmp_path):
        with running_daemon(tmp_path) as (daemon, sock, _):
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.settimeout(10.0)
            raw.connect(sock)
            rfile = raw.makefile("rb")
            raw.sendall(b"this is not json\n")
            reply = decode_message(rfile.readline())
            assert reply["ok"] is False and "malformed" in reply["error"]
            raw.sendall(encode_message({"op": "frobnicate"}))
            reply = decode_message(rfile.readline())
            assert reply["ok"] is False and "unknown op" in reply["error"]
            # the connection survived both errors
            raw.sendall(encode_message({"op": "status"}))
            reply = decode_message(rfile.readline())
            assert reply["ok"] is True
            raw.close()

    def test_bad_request_and_unknown_id_errors(self, tmp_path):
        with running_daemon(tmp_path) as (daemon, sock, _):
            with DaemonClient(sock) as c:
                with pytest.raises(ServiceError, match="bad request"):
                    c.submit({"n": 40, "bogus_field": 1})
                with pytest.raises(ServiceError, match="unknown job id"):
                    c.status(12345)
                with pytest.raises(ServiceError, match="unknown job id"):
                    c.cancel(12345)

    def test_many_jobs_two_tenants(self, tmp_path):
        """The load shape the daemon exists for: a thousand tiny jobs
        from two tenants through one socket, every one accounted for."""
        jobs_per_tenant = 500
        req = {"n": 8, "seed": 0, "device": "gtx680-cuda"}
        with running_daemon(tmp_path, workers=4,
                            queue_depth=128) as (daemon, sock, _):
            with DaemonClient(sock, tenant="a") as ca, \
                    DaemonClient(sock, tenant="b") as cb:
                ids = []
                for _ in range(jobs_per_tenant):
                    ids.append(ca.submit(req))
                    ids.append(cb.submit(req))
                assert len(set(ids)) == 2 * jobs_per_tenant
                last = ids[-1]
                ca.wait(last, timeout=120)
                assert wait_until(
                    lambda: daemon._pending_count() == 0, timeout=120)
                top = ca.status()
                assert top["jobs"]["submitted"] == 2 * jobs_per_tenant
                assert top["jobs"]["by_status"] == {
                    "ok": 2 * jobs_per_tenant}
                dispatched = top["queue"]["dispatched"]
                assert dispatched["a"] == jobs_per_tenant
                assert dispatched["b"] == jobs_per_tenant


class TestScheduling:
    def test_fair_share_and_ordered_events_per_connection(self, tmp_path):
        """One tenant floods the queue before the other's jobs arrive;
        dispatch still alternates — observed through a streaming
        subscription whose events arrive in bus order."""
        with running_daemon(tmp_path, workers=1) as (daemon, sock, _):
            baseline_sinks = len(daemon.bus._sinks)
            sub_client = DaemonClient(sock, timeout=60.0)
            sub_client._send({"op": "subscribe"})
            assert sub_client._recv()["ok"] is True
            # only submit once the server side attached its bus sink,
            # so no admission event can slip past the stream
            assert wait_until(
                lambda: len(daemon.bus._sinks) > baseline_sinks)
            events = []
            seen_all = threading.Event()

            def pump():
                remaining = set(range(7))
                try:
                    while remaining:
                        frame = decode_message(sub_client._rfile.readline())
                        if "event" not in frame:
                            continue
                        event = frame["event"]
                        events.append(event)
                        if event.get("kind") == "job.finished":
                            remaining.discard(event.get("index"))
                    seen_all.set()
                except (ServiceError, OSError):
                    pass

            pump_thread = threading.Thread(target=pump, daemon=True)
            pump_thread.start()
            with DaemonClient(sock, tenant="z") as cz, \
                    DaemonClient(sock, tenant="a") as ca, \
                    DaemonClient(sock, tenant="b") as cb:
                blocker = cz.submit(BIG)  # index 0 occupies the only worker
                a_ids = [ca.submit(TINY) for _ in range(4)]  # 1..4
                b_ids = [cb.submit(TINY) for _ in range(2)]  # 5..6
                for job_id in a_ids + b_ids + [blocker]:
                    ca.wait(job_id, timeout=120)
            assert seen_all.wait(60)
            sub_client.close()
            pump_thread.join(timeout=10)
            started = [e["index"] for e in events
                       if e.get("kind") == "job.started"
                       and e.get("index") != 0]
            # a=1,2,3,4  b=5,6: equal priority alternates tenants, then
            # the flooding tenant finishes its backlog in FIFO order
            assert started == [1, 5, 2, 6, 3, 4]
            # the stream is ordered: bus seq strictly increasing
            seqs = [e["seq"] for e in events if "seq" in e]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_priority_beats_fair_share(self, tmp_path):
        with running_daemon(tmp_path, workers=1) as (daemon, sock, _):
            with DaemonClient(sock, tenant="t") as c:
                blocker = c.submit(BIG)
                low = c.submit(TINY, priority=0)
                high = c.submit(TINY, priority=9)
                c.wait(blocker, timeout=120)
                c.wait(low, timeout=60)
                c.wait(high, timeout=60)
                # dispatch order is visible in the started journal of
                # worker pulls: the high-priority job ran first
                st_low = c.status(low)
                st_high = c.status(high)
                assert st_high["result"]["queue_wait_s"] \
                    <= st_low["result"]["queue_wait_s"]


class TestPreemption:
    def test_cancel_queued_job_is_canceled(self, tmp_path):
        with running_daemon(tmp_path, workers=1) as (daemon, sock, _):
            with DaemonClient(sock, tenant="t") as c:
                blocker = c.submit(BIG)
                victim = c.submit(TINY)
                reply = c.cancel(victim)
                assert reply["state"] == "canceled"
                result = c.wait(victim, timeout=30)
                assert result["status"] == STATUS_CANCELED
                assert c.wait(blocker, timeout=120)["status"] == STATUS_OK

    def test_preempt_then_resume_equals_uninterrupted(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        with running_daemon(tmp_path, workers=1,
                            checkpoint_dir=ckpt) as (daemon, sock, _):
            with DaemonClient(sock, tenant="t") as c:
                ref = c.wait(c.submit(BIG), timeout=120)
                assert ref["status"] == STATUS_OK

                job_id = c.submit(BIG)
                assert wait_until(
                    lambda: c.status(job_id)["state"] != "queued")
                time.sleep(0.1)  # let it get some scans in
                reply = c.cancel(job_id)
                assert reply["state"] == "preempting"
                preempted = c.wait(job_id, timeout=60)
                assert preempted["status"] == STATUS_PREEMPTED
                assert preempted["checkpoint"]
                assert os.path.exists(preempted["checkpoint"])

                resume = c.resume(job_id)
                assert resume["state"] == "queued"
                final = c.wait(job_id, timeout=120)
                assert final["status"] == STATUS_OK
                # resume ≡ uninterrupted: the solver stack is
                # deterministic, so the spliced run lands exactly where
                # the uninterrupted one did
                for key in ("final_length", "canonical_length",
                            "moves_applied", "scans", "initial_length"):
                    assert final[key] == ref[key], key
                st = c.status(job_id)
                assert st["attempts"] == 2

    def test_resume_refuses_ok_jobs(self, tmp_path):
        with running_daemon(tmp_path) as (daemon, sock, _):
            with DaemonClient(sock, tenant="t") as c:
                job_id = c.submit(TINY)
                c.wait(job_id, timeout=60)
                with pytest.raises(ServiceError, match="finished ok"):
                    c.resume(job_id)


class TestDeadlineScanBoundary:
    """Satellite regression: a deadline passing *mid-solve* must stop
    the job at the next scan boundary with a resumable checkpoint —
    not run to completion on a long instance."""

    def test_midrun_expiry_stops_with_resumable_checkpoint(self, tmp_path):
        request = SolveRequest.from_dict(dict(BIG, deadline_s=0.05),
                                         default_id="exp")
        cache = ArtifactCache()
        uninterrupted = run_request(
            SolveRequest.from_dict(BIG, default_id="exp"), cache)
        assert uninterrupted.status == STATUS_OK

        from repro.service.queue import JobQueue
        from repro.service.pool import WorkerPool

        jobs = JobQueue(max_depth=4)
        pool = WorkerPool(jobs, cache, workers=1,
                          checkpoint_dir=tmp_path / "ckpt")
        os.makedirs(tmp_path / "ckpt", exist_ok=True)
        pool.start()
        jobs.submit(request, index=0)
        jobs.close()
        result = pool.results.get(timeout=60)
        pool.join(timeout=10)
        assert result.status == STATUS_EXPIRED
        assert "scan boundary" in result.error
        assert result.checkpoint and os.path.exists(result.checkpoint)
        # the expired job's checkpoint resumes to the uninterrupted end
        resumed = run_request(
            SolveRequest.from_dict(BIG, default_id="exp"), cache,
            resume_from=result.checkpoint)
        assert resumed.status == STATUS_OK
        assert resumed.final_length == uninterrupted.final_length
        assert resumed.moves_applied == uninterrupted.moves_applied
        assert resumed.scans == uninterrupted.scans


class TestAutoscale:
    def test_grows_under_load_and_shrinks_idle(self, tmp_path):
        # each job must outlast several drainer poll windows, or the
        # autoscaler (which runs on idle polls) never gets a tick
        medium = {"n": 600, "seed": 4, "device": "gtx680-cuda"}
        with running_daemon(tmp_path, workers=1,
                            max_workers=3) as (daemon, sock, _):
            with DaemonClient(sock, tenant="t") as c:
                ids = [c.submit(medium) for _ in range(4)]
                for job_id in ids:
                    assert c.wait(job_id, timeout=120)["status"] == STATUS_OK
                # scale-up happened: slots were added beyond the floor
                assert daemon.pool.workers > 1
                # and idle capacity retires back down to the floor
                assert wait_until(
                    lambda: daemon.pool.alive_count() == 1, timeout=30)


class TestDrain:
    def test_drain_op_cuts_journal_drained_exit_zero(self, tmp_path):
        journal = tmp_path / "daemon.journal.jsonl"
        with running_daemon(tmp_path,
                            journal_path=journal) as (daemon, sock, code):
            with DaemonClient(sock, tenant="t") as c:
                for _ in range(3):
                    c.wait(c.submit(TINY), timeout=60)
                reply = c.drain()
                assert reply["draining"] is True
        assert code["code"] == 0
        replay = read_journal(journal)
        assert replay.cuts == ["drained"]
        assert replay.pending == []
        assert len(replay.finished) == 3

    def test_draining_daemon_refuses_submits(self, tmp_path):
        with running_daemon(tmp_path, workers=1) as (daemon, sock, code):
            with DaemonClient(sock, tenant="t") as c:
                blocker = c.submit(BIG)
                c.drain()
                with pytest.raises(ServiceError, match="draining"):
                    c.submit(TINY)

    def test_sigterm_drains_with_exit_zero(self, tmp_path):
        sock = str(tmp_path / "d.sock")
        import repro
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [src, env.get("PYTHONPATH", "")] if p)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--socket", sock,
             "--workers", "1", "--journal",
             str(tmp_path / "term.journal.jsonl")],
            env=env, stderr=subprocess.PIPE, text=True)
        try:
            assert wait_until(lambda: os.path.exists(sock), timeout=30)
            with DaemonClient(sock, tenant="t") as c:
                assert c.wait(c.submit(TINY), timeout=60)["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        replay = read_journal(tmp_path / "term.journal.jsonl")
        assert replay.cuts == ["drained"]

    def test_resume_journal_requeues_pending(self, tmp_path):
        # a journal from a daemon killed mid-run: two admitted, one
        # finished — the restarted daemon re-queues the pending job and
        # the file stays strictly seq-monotonic across both segments
        journal = tmp_path / "resume.journal.jsonl"
        done = SolveRequest.from_dict(TINY, default_id="done")
        todo = SolveRequest.from_dict(dict(TINY, seed=9), default_id="todo")
        with JournalWriter(journal) as w:
            w.batch(jobs=2)
            w.admitted(0, done)
            w.admitted(1, todo)
            reference = run_request(done, ArtifactCache())
            reference.index = 0
            w.finished(reference)
        first = read_journal(journal)
        assert first.pending == [1]

        with running_daemon(tmp_path,
                            resume_journal=journal) as (daemon, sock, code):
            with DaemonClient(sock, tenant="t") as c:
                result = c.wait(1, timeout=60)
                assert result["status"] == STATUS_OK
                c.drain()
        assert code["code"] == 0
        replay = read_journal(journal)  # raises on any seq regression
        assert replay.pending == []
        assert replay.last_seq > first.last_seq
        assert replay.cuts == ["drained"]


class TestBatchParity:
    def test_daemon_results_bit_identical_to_one_shot_batch(self, tmp_path):
        rows = [dict(TINY, seed=s) for s in range(5)]
        requests = [SolveRequest.from_dict(r, default_id=f"job{i}")
                    for i, r in enumerate(rows)]
        report = run_batch(requests, workers=2)
        by_id = {r.job_id: r for r in report.results}
        with running_daemon(tmp_path, workers=3) as (daemon, sock, _):
            with DaemonClient(sock, tenant="t") as c:
                ids = [c.submit(row) for row in rows]
                for i, job_id in enumerate(ids):
                    got = c.wait(job_id, timeout=120)
                    ref = by_id[f"job{i}"]
                    assert got["status"] == ref.status == STATUS_OK
                    # everything modeled is bit-identical; only wall
                    # fields (queue_wait, wall_seconds) may differ
                    assert got["final_length"] == ref.final_length
                    assert got["canonical_length"] == ref.canonical_length
                    assert got["initial_length"] == ref.initial_length
                    assert got["moves_applied"] == ref.moves_applied
                    assert got["scans"] == ref.scans
                    assert got["modeled_seconds"] == ref.modeled_seconds
