"""Manifest/job-model validation for the batch-solve service."""

import pytest

from repro.errors import ManifestError
from repro.service.jobs import SolveRequest, SolveResult

pytestmark = pytest.mark.service


class TestFromDict:
    def test_minimal_synthetic(self):
        req = SolveRequest.from_dict({"n": 120, "seed": 3}, default_id="job7")
        assert req.job_id == "job7"
        assert req.n == 120 and req.seed == 3
        assert req.initial == "greedy" and req.mode == "fast"

    def test_file_request(self):
        req = SolveRequest.from_dict(
            {"id": "b52", "file": "data/sample52-uniform.tsp"}
        )
        assert req.file == "data/sample52-uniform.tsp"
        assert req.instance_label() == "data/sample52-uniform.tsp"

    def test_unknown_key_rejected(self):
        with pytest.raises(ManifestError, match="unknown manifest field"):
            SolveRequest.from_dict({"n": 50, "moar_speed": True})

    def test_non_object_rejected(self):
        with pytest.raises(ManifestError, match="JSON objects"):
            SolveRequest.from_dict([1, 2, 3])

    def test_missing_source_rejected(self):
        with pytest.raises(ManifestError, match="exactly one of"):
            SolveRequest.from_dict({"seed": 1})

    def test_two_sources_rejected(self):
        with pytest.raises(ManifestError, match="exactly one of"):
            SolveRequest.from_dict({"n": 50, "file": "x.tsp"})

    def test_bad_types_rejected(self):
        with pytest.raises(ManifestError, match="'n' must be an integer"):
            SolveRequest.from_dict({"n": "fifty"})
        with pytest.raises(ManifestError, match="'deadline_s' must be"):
            SolveRequest.from_dict({"n": 50, "deadline_s": "soon"})
        with pytest.raises(ManifestError, match="positive"):
            SolveRequest.from_dict({"n": 50, "deadline_s": -1})
        # booleans must not masquerade as integers
        with pytest.raises(ManifestError, match="'retries'"):
            SolveRequest.from_dict({"n": 50, "retries": True})

    def test_bad_enums_rejected(self):
        with pytest.raises(ManifestError, match="unknown initial"):
            SolveRequest.from_dict({"n": 50, "initial": "psychic"})
        with pytest.raises(ManifestError, match="unknown mode"):
            SolveRequest.from_dict({"n": 50, "mode": "warp"})
        with pytest.raises(ManifestError, match="unknown strategy"):
            SolveRequest.from_dict({"n": 50, "strategy": "luck"})

    def test_devices_comma_string_and_list(self):
        a = SolveRequest.from_dict({"n": 50, "devices": "gtx680-cuda, hd7970-opencl"})
        b = SolveRequest.from_dict({"n": 50, "devices": ["gtx680-cuda", "hd7970-opencl"]})
        assert a.devices == b.devices == ("gtx680-cuda", "hd7970-opencl")

    def test_synthetic_label(self):
        req = SolveRequest.from_dict({"n": 90, "seed": 4})
        assert req.instance_label() == "synthetic-90-seed4"


class TestSolveResult:
    def test_ok_payload_carries_solver_fields(self):
        r = SolveResult(job_id="a", status="ok", instance="x", n=10,
                        final_length=42, tour=[0, 1, 2])
        d = r.as_dict()
        assert r.ok
        assert d["final_length"] == 42
        assert d["tour"] == [0, 1, 2]
        assert "error" not in d

    def test_failed_payload_carries_error_only(self):
        r = SolveResult(job_id="a", status="failed", error="boom")
        d = r.as_dict()
        assert not r.ok
        assert d["error"] == "boom"
        assert "final_length" not in d
