"""Durable job journal: write/replay round-trips and corruption rules."""

import json

import pytest

from repro.errors import JournalError
from repro.service.jobs import SolveRequest, SolveResult
from repro.service.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalWriter,
    quarantine_path_for,
    read_journal,
    repair_torn_tail,
)

pytestmark = pytest.mark.service


def write_small_journal(path, jobs=3, finish=(0, 2)):
    """A journal with *jobs* admitted jobs and ``finish`` finished ones."""
    with JournalWriter(path) as w:
        w.batch(jobs=jobs)
        for i in range(jobs):
            w.admitted(i, SolveRequest(job_id=f"j{i}", n=50 + i, seed=i))
        for i in finish:
            w.started(i, f"j{i}", worker=0)
            w.finished(SolveResult(job_id=f"j{i}", status="ok",
                                   instance=f"synthetic-{50 + i}-seed{i}",
                                   final_length=100.0 + i, index=i))
    return path


class TestRoundTrip:
    def test_replay_reconstructs_requests_and_results(self, tmp_path):
        p = write_small_journal(tmp_path / "run.journal")
        replay = read_journal(p)
        assert replay.total_jobs == 3
        assert sorted(replay.requests) == [0, 1, 2]
        assert replay.requests[1].job_id == "j1"
        assert replay.requests[1].n == 51
        assert replay.finished[0].final_length == 100.0
        assert replay.pending == [1]
        assert replay.dropped_lines == 0
        assert replay.started == {0: 0, 2: 0}

    def test_every_line_carries_valid_crc(self, tmp_path):
        p = write_small_journal(tmp_path / "run.journal")
        import zlib
        for line in p.read_text().splitlines():
            body = json.loads(line)
            crc = body.pop("crc")
            canonical = json.dumps(body, sort_keys=True,
                                   separators=(",", ":"))
            assert zlib.crc32(canonical.encode()) == crc
            assert body["v"] == JOURNAL_SCHEMA_VERSION

    def test_sequence_numbers_are_contiguous(self, tmp_path):
        p = write_small_journal(tmp_path / "run.journal")
        seqs = [json.loads(line)["seq"] for line in p.read_text().splitlines()]
        assert seqs == list(range(len(seqs)))

    def test_latest_finished_event_wins(self, tmp_path):
        p = tmp_path / "run.journal"
        with JournalWriter(p) as w:
            w.batch(jobs=1)
            w.admitted(0, SolveRequest(job_id="j0", n=50))
            w.finished(SolveResult(job_id="j0", status="failed",
                                   error="first try", index=0))
            # a resume segment re-ran the job successfully
            w.resumed(pending=1)
            w.finished(SolveResult(job_id="j0", status="ok",
                                   final_length=7.0, index=0))
            w.cut("complete", finished=1)
        replay = read_journal(p)
        assert replay.finished[0].status == "ok"
        assert replay.pending == []
        assert replay.cuts == ["complete"]

    def test_writer_close_is_idempotent(self, tmp_path):
        w = JournalWriter(tmp_path / "run.journal")
        w.batch(jobs=0)
        w.close()
        w.close()

    def test_unwritable_path_raises(self, tmp_path):
        with pytest.raises(JournalError, match="cannot open journal"):
            JournalWriter(tmp_path / "no" / "such" / "dir" / "run.journal")


class TestTornTail:
    def test_truncated_final_line_is_dropped(self, tmp_path):
        p = write_small_journal(tmp_path / "run.journal")
        data = p.read_bytes()
        p.write_bytes(data[:-20])
        replay = read_journal(p)
        assert replay.dropped_lines == 1
        # the torn line was j2's finished event, so j2 is pending again
        assert replay.pending == [1, 2]

    def test_appended_garbage_is_dropped(self, tmp_path):
        p = write_small_journal(tmp_path / "run.journal")
        with p.open("ab") as fh:
            fh.write(b'{"v": 1, "seq": \xff\xfe junk')
        replay = read_journal(p)
        assert replay.dropped_lines == 1
        assert replay.pending == [1]

    def test_checksum_failing_tail_is_dropped(self, tmp_path):
        p = write_small_journal(tmp_path / "run.journal")
        lines = p.read_text().splitlines()
        # valid JSON, wrong crc: a torn sector that still parses
        tampered = json.loads(lines[-1])
        tampered["index"] = 99
        lines[-1] = json.dumps(tampered, sort_keys=True)
        p.write_text("\n".join(lines) + "\n")
        replay = read_journal(p)
        assert replay.dropped_lines == 1

    def test_valid_bytes_marks_end_of_last_good_line(self, tmp_path):
        p = write_small_journal(tmp_path / "run.journal")
        intact = p.stat().st_size
        assert read_journal(p).valid_bytes == intact
        with p.open("ab") as fh:
            fh.write(b"torn garbage with no newline")
        assert read_journal(p).valid_bytes == intact

    def test_repair_truncates_torn_tail(self, tmp_path):
        p = write_small_journal(tmp_path / "run.journal")
        intact = p.stat().st_size
        with p.open("ab") as fh:
            fh.write(b'{"v": 1, "seq": \xff\xfe junk')
        replay = read_journal(p)
        removed = repair_torn_tail(p, replay)
        assert removed == len(b'{"v": 1, "seq": \xff\xfe junk')
        assert p.stat().st_size == intact
        assert read_journal(p).dropped_lines == 0

    def test_repair_is_a_noop_on_an_intact_journal(self, tmp_path):
        p = write_small_journal(tmp_path / "run.journal")
        data = p.read_bytes()
        assert repair_torn_tail(p, read_journal(p)) == 0
        assert p.read_bytes() == data

    def test_append_after_repair_does_not_concatenate(self, tmp_path):
        # the exact failure mode: append after a torn tail used to glue
        # the new line onto the garbage, poisoning every later read
        p = write_small_journal(tmp_path / "run.journal")
        with p.open("ab") as fh:
            fh.write(b"half a li")
        before = read_journal(p)
        repair_torn_tail(p, before)
        with JournalWriter(p, start_seq=before.last_seq + 1) as w:
            w.resumed(pending=1)
        replay = read_journal(p)
        assert replay.dropped_lines == 0
        assert replay.pending == [1]

    def test_repair_restores_missing_trailing_newline(self, tmp_path):
        # torn exactly between a line's last byte and its newline: the
        # line is valid but unterminated, and an append must not fuse
        # onto it
        p = write_small_journal(tmp_path / "run.journal")
        p.write_bytes(p.read_bytes()[:-1])  # strip the final newline
        replay = read_journal(p)
        assert replay.dropped_lines == 0
        repair_torn_tail(p, replay)
        assert p.read_bytes().endswith(b"\n")
        with JournalWriter(p, start_seq=replay.last_seq + 1) as w:
            w.resumed(pending=1)
        assert read_journal(p).dropped_lines == 0

    def test_interior_corruption_refuses_resume(self, tmp_path):
        p = write_small_journal(tmp_path / "run.journal")
        lines = p.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # damage a middle line
        p.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="followed by valid"):
            read_journal(p)


class TestRejection:
    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            read_journal(tmp_path / "ghost.journal")

    def test_no_admitted_jobs_raises(self, tmp_path):
        p = tmp_path / "empty.journal"
        with JournalWriter(p) as w:
            w.batch(jobs=0)
        with pytest.raises(JournalError, match="no admitted jobs"):
            read_journal(p)

    def test_future_schema_version_raises(self, tmp_path):
        p = tmp_path / "future.journal"
        from repro.service.journal import _line_crc
        body = {"v": JOURNAL_SCHEMA_VERSION + 1, "seq": 0, "event": "batch",
                "jobs": 1}
        body["crc"] = _line_crc(body)
        p.write_text(json.dumps(body, sort_keys=True) + "\n")
        with pytest.raises(JournalError, match="schema version"):
            read_journal(p)

    def test_unknown_event_raises(self, tmp_path):
        p = tmp_path / "odd.journal"
        from repro.service.journal import _line_crc
        body = {"v": JOURNAL_SCHEMA_VERSION, "seq": 0, "event": "levitated"}
        body["crc"] = _line_crc(body)
        p.write_text(json.dumps(body, sort_keys=True) + "\n")
        with pytest.raises(JournalError, match="unknown journal event"):
            read_journal(p)


class TestQuarantinePath:
    def test_sidecar_name(self, tmp_path):
        j = tmp_path / "run.journal"
        assert quarantine_path_for(j) == tmp_path / "run.journal.quarantine.jsonl"

    def test_none_passes_through(self):
        assert quarantine_path_for(None) is None


class TestResumeSeqMonotonicity:
    """Regression: a resumed :class:`JournalWriter` used to restart
    ``seq`` at 0, so the file went non-monotonic at the first resume
    boundary and a *second* resume refused to read its own journal.
    The writer now continues at ``last_seq + 1``; any number of resume
    segments keeps one strictly increasing sequence across the file."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(jobs=st.integers(min_value=2, max_value=6),
           finishes=st.lists(st.integers(min_value=0, max_value=3),
                             min_size=2, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_repeated_resume_keeps_seq_strictly_increasing(
            self, jobs, finishes):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "resume.journal"
            with JournalWriter(path) as w:
                w.batch(jobs=jobs)
                for i in range(jobs):
                    w.admitted(i, SolveRequest(job_id=f"j{i}", n=50, seed=i))
            last = -1
            for finish_count in finishes:
                # read_journal itself raises on any seq regression, so a
                # clean read after each segment is the core assertion
                replay = read_journal(path)
                assert replay.last_seq > last
                last = replay.last_seq
                with JournalWriter(path,
                                   start_seq=replay.last_seq + 1) as w:
                    w.resumed(pending=len(replay.pending))
                    for i in replay.pending[:finish_count]:
                        w.finished(SolveResult(
                            job_id=f"j{i}", status="ok",
                            instance="synthetic", index=i))
            final = read_journal(path)
            seqs = [json.loads(line)["seq"]
                    for line in path.read_text().splitlines()]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)
            assert final.last_seq == seqs[-1]
