"""Tests for the live observability choreography (BatchObserver)."""

import json

import pytest

from repro.service import (
    ArtifactCache,
    BatchObserver,
    SolveRequest,
    flight_path_for,
    quarantine_path_for,
    run_batch,
)
from repro.telemetry.live import read_flight

pytestmark = [pytest.mark.service, pytest.mark.observe]


def _requests(n_jobs=4, sizes=(100, 120)):
    return [SolveRequest(job_id=f"j{i}", n=sizes[i % len(sizes)],
                         seed=sizes[i % len(sizes)])
            for i in range(n_jobs)]


def _observed_run(requests, **kwargs):
    events = []
    observer = BatchObserver()
    observer.bus.attach(events.append)
    report = run_batch(requests, observer=observer, **kwargs)
    return report, events, observer


class TestEventStream:
    def test_calm_batch_event_census(self):
        report, events, _ = _observed_run(_requests(4), workers=2,
                                          cache=ArtifactCache())
        kinds = [e["kind"] for e in events]
        assert kinds.count("batch.begin") == 1
        assert kinds.count("batch.end") == 1
        for kind in ("job.admitted", "job.started", "span.open",
                     "span.close", "job.finished"):
            assert kinds.count(kind) == 4, kind
        assert len(events) == 22
        assert report.ok

    def test_totally_ordered_and_gapless(self):
        _, events, _ = _observed_run(_requests(6), workers=3)
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_per_job_lifecycle_ordering(self):
        """Every admitted job sees admission → start → finish, in that
        order, each event stamped with its job id."""
        _, events, _ = _observed_run(_requests(5), workers=2)
        for job_id in (f"j{i}" for i in range(5)):
            mine = [e["kind"] for e in events if e.get("job") == job_id]
            assert mine.index("job.admitted") < mine.index("job.started")
            assert mine.index("job.started") < mine.index("job.finished")

    def test_finished_event_carries_trace_and_metrics(self):
        _, events, _ = _observed_run(_requests(2), workers=1)
        finished = [e for e in events if e["kind"] == "job.finished"]
        for e in finished:
            assert e["trace"] == f"{e['job']}#{e['index']}"
            assert e["status"] == "ok"
            assert e["worker"] == 0
            assert "metrics" in e

    def test_batch_end_reports_reason_and_counts(self):
        _, events, _ = _observed_run(_requests(3), workers=1)
        end = events[-1]
        assert end["kind"] == "batch.end"
        assert end["reason"] == "complete"
        assert end["counts"] == {"ok": 3}
        assert end["breaches"] == 0


class TestDeterminism:
    def test_results_bit_identical_events_on_vs_off(self):
        """Observation is observation: the full observer stack changes
        nothing about the tours, work counters, or modeled times."""
        plain = run_batch(_requests(6), workers=2, cache=ArtifactCache())
        observed, _, _ = _observed_run(_requests(6), workers=2,
                                       cache=ArtifactCache())
        key = lambda r: r.job_id
        for a, b in zip(sorted(plain.results, key=key),
                        sorted(observed.results, key=key)):
            assert a.job_id == b.job_id
            assert a.status == b.status
            assert a.final_length == b.final_length
            assert a.canonical_length == b.canonical_length
            assert a.moves_applied == b.moves_applied
            assert a.scans == b.scans
            assert a.modeled_seconds == b.modeled_seconds


class TestSLOs:
    def test_calm_path_has_zero_breaches(self):
        report, events, _ = _observed_run(_requests(4), workers=2)
        assert not any(e["kind"] == "slo.breach" for e in events)
        assert report.slos["breaches"] == []
        rules = {r["name"]: r for r in report.slos["rules"]}
        assert rules["job-error-rate"]["ok"] is True
        assert rules["job-error-rate"]["applicable"] is True

    def test_custom_slo_breach_published_once(self):
        from repro.telemetry.live import parse_slo

        events = []
        # impossible bound: any finished job breaches immediately
        observer = BatchObserver(slos=[
            parse_slo("ratio:service.jobs.ok/service.jobs.ok<=0.5",
                      name="always-breach")])
        observer.bus.attach(events.append)
        report = run_batch(_requests(4), workers=2, observer=observer)
        breaches = [e for e in events if e["kind"] == "slo.breach"]
        assert len(breaches) == 1  # edge-triggered, not re-published
        assert breaches[0]["slo"] == "always-breach"
        assert report.slos["breaches"] == ["always-breach"]

    def test_metrics_snapshot_written(self, tmp_path):
        path = tmp_path / "metrics.prom"
        observer = BatchObserver(metrics_path=path)
        run_batch(_requests(3), workers=1, observer=observer)
        text = path.read_text()
        assert "repro_service_jobs_ok_total 3" in text
        assert "repro_service_queue_wait_count 3" in text


class TestFlightRecorder:
    CHAOS = "kill:worker=0,pull=2;kill:worker=0,pull=7"

    def _chaos_run(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        requests = [SolveRequest(job_id=f"cx-{i}", n=100, seed=i)
                    for i in range(6)]
        events = []
        observer = BatchObserver()
        observer.bus.attach(events.append)
        report = run_batch(requests, workers=1, queue_depth=8,
                           journal_path=journal, chaos=self.CHAOS,
                           poll_interval_s=0.01, observer=observer)
        return report, events, observer, journal

    def test_crash_dumps_flight_sidecar(self, tmp_path):
        report, events, observer, journal = self._chaos_run(tmp_path)
        sidecar = flight_path_for(journal)
        assert observer.flight.path == sidecar  # auto-derived
        records = read_flight(sidecar)
        reasons = [r["reason"] for r in records]
        assert reasons.count("crash") == 2
        assert reasons.count("quarantine") == 1
        # the crash record is the poison worker's black box: the kill
        # fires at pull time, so the ring ends with the poison job
        # admitted and the previous job's full lifecycle
        crash = records[0]
        assert crash["worker"] == 0
        assert crash["job"] == "cx-1"
        assert any(e["kind"] == "job.admitted" and e.get("job") == "cx-1"
                   for e in crash["events"])
        assert any(e["kind"] == "job.finished" and e.get("job") == "cx-0"
                   for e in crash["events"])
        seqs = [e["seq"] for e in crash["events"]]
        assert seqs == sorted(seqs)  # merged rings keep bus order

    def test_quarantine_record_cross_links_flight(self, tmp_path):
        _, _, _, journal = self._chaos_run(tmp_path)
        qpath = quarantine_path_for(journal)
        lines = [json.loads(line) for line in
                 qpath.read_text().splitlines() if line.strip()]
        assert len(lines) == 1
        record = lines[0]
        assert record["id"] == "cx-1"
        assert record["flight"] == str(flight_path_for(journal))

    def test_chaos_event_stream_tells_the_story(self, tmp_path):
        report, events, _, _ = self._chaos_run(tmp_path)
        kinds = [e["kind"] for e in events]
        assert kinds.count("worker.crashed") == 2
        assert kinds.count("worker.respawned") == 1
        assert kinds.count("job.requeued") == 1
        assert kinds.count("job.quarantined") == 1
        assert kinds.count("flight.dump") == 3
        # the journal's durable writes echo onto the stream
        assert kinds.count("journal.finished") == len(report.results)
        # crashes breach the zero-error SLO exactly once
        assert kinds.count("slo.breach") == 1

    def test_report_events_summary(self, tmp_path):
        report, events, observer, journal = self._chaos_run(tmp_path)
        assert report.events["published"] == len(events)
        assert report.events["dropped"] == 0
        assert report.events["flight_dumps"] == 3
        assert report.events["flight_path"] == str(flight_path_for(journal))


class TestReplayAndTelemetryPlumbing:
    def test_replayed_jobs_publish_replay_events(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        requests = _requests(3)
        run_batch(requests, workers=1, journal_path=journal)
        events = []
        observer = BatchObserver()
        observer.bus.attach(events.append)
        report = run_batch(None, resume_from=journal, workers=1,
                           observer=observer)
        kinds = [e["kind"] for e in events]
        assert kinds.count("job.replayed") == 3
        assert kinds.count("job.admitted") == 0  # nothing left to run
        assert len(report.results) == 3

    def test_pool_without_observer_still_noop_tracer(self):
        """The default path stays zero-cost: no observer, no per-job
        telemetry contexts, no telemetry field on results."""
        report = run_batch(_requests(2), workers=1)
        assert all(r.telemetry is None for r in report.results)

    def test_worker_metrics_merged_into_observer(self):
        _, _, observer = _observed_run(_requests(3), workers=1)
        snap = observer.metrics.snapshot()
        assert snap["counters"].get("service.jobs.ok") == 3
        # per-job solver-side counters folded in from worker threads
        assert snap["counters"].get("transfer.bytes", 0) > 0
