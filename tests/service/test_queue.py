"""Admission control, deadline stamping, shutdown races, and the
fair-share dispatch policy in :class:`JobQueue`/:class:`FairShareQueue`."""

import threading

import pytest

from repro.errors import QueueClosedError, QueueFullError
from repro.service.jobs import SolveRequest
from repro.service.queue import RETIRE, FairShareQueue, JobQueue

pytestmark = pytest.mark.service


class FakeClock:
    """Deterministic monotonic clock the tests can advance by hand."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def req(job_id="j", n=50):
    return SolveRequest(job_id=job_id, n=n)


class TestAdmission:
    def test_fifo_order(self):
        q = JobQueue(max_depth=4)
        for i in range(3):
            q.submit(req(f"j{i}"), index=i)
        assert [q.pull().request.job_id for _ in range(3)] == ["j0", "j1", "j2"]

    def test_full_queue_rejects_nonblocking(self):
        q = JobQueue(max_depth=2)
        q.submit(req("a"))
        q.submit(req("b"))
        with pytest.raises(QueueFullError, match="max depth 2"):
            q.submit(req("c"))
        assert q.depth == 2

    def test_closed_queue_rejects(self):
        q = JobQueue(max_depth=2)
        q.close()
        with pytest.raises(QueueClosedError):
            q.submit(req("late"))

    def test_pull_returns_none_when_closed_and_drained(self):
        q = JobQueue(max_depth=2)
        q.submit(req("a"))
        q.close()
        assert q.pull().request.job_id == "a"
        assert q.pull() is None

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)


class TestDeadlines:
    def test_deadline_stamped_from_admission(self):
        clock = FakeClock(100.0)
        q = JobQueue(max_depth=4, clock=clock)
        job = q.submit(SolveRequest(job_id="d", n=50, deadline_s=2.5))
        assert job.submitted_at == 100.0
        assert job.deadline_at == 102.5
        assert not job.expired(102.5)
        assert job.expired(102.51)

    def test_default_deadline_applies_only_without_own(self):
        clock = FakeClock(10.0)
        q = JobQueue(max_depth=4, clock=clock)
        own = q.submit(SolveRequest(job_id="a", n=50, deadline_s=1.0),
                       default_deadline_s=9.0)
        inherited = q.submit(SolveRequest(job_id="b", n=50),
                             default_deadline_s=9.0)
        unbounded = q.submit(SolveRequest(job_id="c", n=50))
        assert own.deadline_at == 11.0
        assert inherited.deadline_at == 19.0
        assert unbounded.deadline_at is None
        assert not unbounded.expired(1e9)


class TestShutdownRaces:
    def test_blocked_submit_raises_when_closed_underneath(self):
        # a producer stuck in submit(block=True) on a full queue must be
        # woken by close() and refused, not left waiting forever
        q = JobQueue(max_depth=1)
        q.submit(req("a"))
        outcome = {}

        def producer():
            try:
                q.submit(req("late"), block=True)
                outcome["result"] = "admitted"
            except QueueClosedError:
                outcome["result"] = "refused"

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        # give the producer time to park inside the full-queue wait
        # (close() refuses the submit on either side of the race)
        import time
        time.sleep(0.05)
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert outcome["result"] == "refused"
        assert q.depth == 1  # the blocked job was never admitted

    def test_blocked_pull_wakes_on_close(self):
        q = JobQueue(max_depth=2)
        pulled = {}

        def consumer():
            pulled["job"] = q.pull()

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert pulled["job"] is None

    def test_close_drains_queued_work_before_none(self):
        q = JobQueue(max_depth=4)
        q.submit(req("a"))
        q.submit(req("b"))
        q.close()
        assert q.pull().request.job_id == "a"
        assert not q.closed_and_empty
        assert q.pull().request.job_id == "b"
        assert q.closed_and_empty
        assert q.pull() is None

    def test_closed_and_empty_is_one_atomic_read(self):
        q = JobQueue(max_depth=2)
        assert not q.closed_and_empty  # open
        q.submit(req("a"))
        q.close()
        assert q.closed  # closed but not empty
        assert not q.closed_and_empty
        q.pull()
        assert q.closed_and_empty

    def test_pool_join_timeout_returns_with_stragglers(self):
        # a worker parked in pull() on an open queue is a straggler;
        # join(timeout=...) must hand control back instead of hanging
        from repro.service.cache import ArtifactCache
        from repro.service.pool import WorkerPool

        q = JobQueue(max_depth=2)
        pool = WorkerPool(q, ArtifactCache(), workers=2)
        pool.start()
        pool.join(timeout=0.1)
        assert pool.any_alive()  # stragglers survived the bounded join
        assert pool.alive_count() == 2
        q.close()
        pool.join(timeout=5.0)
        assert not pool.any_alive()


class TestRetire:
    def test_retire_token_returns_sentinel_without_closing(self):
        q = JobQueue(max_depth=4)
        q.submit(req("a"))
        q.retire()
        # the token takes precedence, then queued work keeps flowing
        assert q.pull() is RETIRE
        assert q.pull().request.job_id == "a"
        assert not q.closed

    def test_retire_wakes_blocked_puller(self):
        q = JobQueue(max_depth=2)
        pulled = {}

        def consumer():
            pulled["value"] = q.pull()

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        q.retire()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert pulled["value"] is RETIRE

    def test_retired_worker_slot_skipped_by_supervisor_and_reused(self):
        from repro.service.cache import ArtifactCache
        from repro.service.pool import WorkerPool
        from repro.service.supervisor import Supervisor

        q = JobQueue(max_depth=4)
        pool = WorkerPool(q, ArtifactCache(), workers=2)
        sup = Supervisor(pool)
        pool.start()
        q.retire()
        deadline = 5.0
        import time
        t0 = time.monotonic()
        while pool.alive_count() > 1 and time.monotonic() - t0 < deadline:
            time.sleep(0.01)
        assert pool.alive_count() == 1
        assert sum(1 for s in pool.states if s.retired) == 1
        # a retired slot is a deliberate exit, not a crash to restart
        assert sup.check() == 0
        assert pool.alive_count() == 1
        # grow() reuses the retired slot before appending a new one
        added = pool.grow(1)
        assert len(added) == 1
        t0 = time.monotonic()
        while pool.alive_count() < 2 and time.monotonic() - t0 < deadline:
            time.sleep(0.01)
        assert pool.alive_count() == 2
        assert len(pool.states) == 2  # reused, not appended
        q.close()
        pool.join(timeout=5.0)


class TestFairShare:
    def test_priority_dispatches_first(self):
        q = FairShareQueue(max_depth=8)
        q.submit(req("low"), tenant="a", priority=0)
        q.submit(req("high"), tenant="a", priority=5)
        q.submit(req("mid"), tenant="a", priority=3)
        order = [q.pull().request.job_id for _ in range(3)]
        assert order == ["high", "mid", "low"]

    def test_equal_priority_interleaves_tenants(self):
        # tenant a floods the queue before tenant b's two jobs arrive;
        # fair-share still alternates instead of starving b
        q = FairShareQueue(max_depth=16)
        for i in range(4):
            q.submit(req(f"a{i}"), tenant="a")
        for i in range(2):
            q.submit(req(f"b{i}"), tenant="b")
        order = [q.pull().request.job_id for _ in range(6)]
        assert order == ["a0", "b0", "a1", "b1", "a2", "a3"]
        assert q.dispatched_by_tenant() == {"a": 4, "b": 2}

    def test_same_tenant_keeps_admission_order(self):
        q = FairShareQueue(max_depth=8)
        for i in range(4):
            q.submit(req(f"j{i}"), tenant="only")
        assert [q.pull().request.job_id for _ in range(4)] == \
            ["j0", "j1", "j2", "j3"]

    def test_cancel_removes_queued_job_by_index(self):
        q = FairShareQueue(max_depth=8)
        q.submit(req("keep"), index=0, tenant="a")
        victim = q.submit(req("gone"), index=1, tenant="a")
        assert q.cancel(1) is victim
        assert q.cancel(1) is None  # already removed
        assert q.depth == 1
        assert q.pull().request.job_id == "keep"

    def test_resume_from_stamped_at_admission(self):
        q = FairShareQueue(max_depth=4)
        job = q.submit(req("r"), resume_from="/tmp/ck.ckpt")
        assert job.resume_from == "/tmp/ck.ckpt"
        assert q.pull().resume_from == "/tmp/ck.ckpt"
