"""Admission control, deadline stamping, and shutdown races in :class:`JobQueue`."""

import threading

import pytest

from repro.errors import QueueClosedError, QueueFullError
from repro.service.jobs import SolveRequest
from repro.service.queue import JobQueue

pytestmark = pytest.mark.service


class FakeClock:
    """Deterministic monotonic clock the tests can advance by hand."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def req(job_id="j", n=50):
    return SolveRequest(job_id=job_id, n=n)


class TestAdmission:
    def test_fifo_order(self):
        q = JobQueue(max_depth=4)
        for i in range(3):
            q.submit(req(f"j{i}"), index=i)
        assert [q.pull().request.job_id for _ in range(3)] == ["j0", "j1", "j2"]

    def test_full_queue_rejects_nonblocking(self):
        q = JobQueue(max_depth=2)
        q.submit(req("a"))
        q.submit(req("b"))
        with pytest.raises(QueueFullError, match="max depth 2"):
            q.submit(req("c"))
        assert q.depth == 2

    def test_closed_queue_rejects(self):
        q = JobQueue(max_depth=2)
        q.close()
        with pytest.raises(QueueClosedError):
            q.submit(req("late"))

    def test_pull_returns_none_when_closed_and_drained(self):
        q = JobQueue(max_depth=2)
        q.submit(req("a"))
        q.close()
        assert q.pull().request.job_id == "a"
        assert q.pull() is None

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)


class TestDeadlines:
    def test_deadline_stamped_from_admission(self):
        clock = FakeClock(100.0)
        q = JobQueue(max_depth=4, clock=clock)
        job = q.submit(SolveRequest(job_id="d", n=50, deadline_s=2.5))
        assert job.submitted_at == 100.0
        assert job.deadline_at == 102.5
        assert not job.expired(102.5)
        assert job.expired(102.51)

    def test_default_deadline_applies_only_without_own(self):
        clock = FakeClock(10.0)
        q = JobQueue(max_depth=4, clock=clock)
        own = q.submit(SolveRequest(job_id="a", n=50, deadline_s=1.0),
                       default_deadline_s=9.0)
        inherited = q.submit(SolveRequest(job_id="b", n=50),
                             default_deadline_s=9.0)
        unbounded = q.submit(SolveRequest(job_id="c", n=50))
        assert own.deadline_at == 11.0
        assert inherited.deadline_at == 19.0
        assert unbounded.deadline_at is None
        assert not unbounded.expired(1e9)


class TestShutdownRaces:
    def test_blocked_submit_raises_when_closed_underneath(self):
        # a producer stuck in submit(block=True) on a full queue must be
        # woken by close() and refused, not left waiting forever
        q = JobQueue(max_depth=1)
        q.submit(req("a"))
        outcome = {}

        def producer():
            try:
                q.submit(req("late"), block=True)
                outcome["result"] = "admitted"
            except QueueClosedError:
                outcome["result"] = "refused"

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        # give the producer time to park inside the full-queue wait
        # (close() refuses the submit on either side of the race)
        import time
        time.sleep(0.05)
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert outcome["result"] == "refused"
        assert q.depth == 1  # the blocked job was never admitted

    def test_blocked_pull_wakes_on_close(self):
        q = JobQueue(max_depth=2)
        pulled = {}

        def consumer():
            pulled["job"] = q.pull()

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert pulled["job"] is None

    def test_close_drains_queued_work_before_none(self):
        q = JobQueue(max_depth=4)
        q.submit(req("a"))
        q.submit(req("b"))
        q.close()
        assert q.pull().request.job_id == "a"
        assert not q.closed_and_empty
        assert q.pull().request.job_id == "b"
        assert q.closed_and_empty
        assert q.pull() is None

    def test_closed_and_empty_is_one_atomic_read(self):
        q = JobQueue(max_depth=2)
        assert not q.closed_and_empty  # open
        q.submit(req("a"))
        q.close()
        assert q.closed  # closed but not empty
        assert not q.closed_and_empty
        q.pull()
        assert q.closed_and_empty

    def test_pool_join_timeout_returns_with_stragglers(self):
        # a worker parked in pull() on an open queue is a straggler;
        # join(timeout=...) must hand control back instead of hanging
        from repro.service.cache import ArtifactCache
        from repro.service.pool import WorkerPool

        q = JobQueue(max_depth=2)
        pool = WorkerPool(q, ArtifactCache(), workers=2)
        pool.start()
        pool.join(timeout=0.1)
        assert pool.any_alive()  # stragglers survived the bounded join
        assert pool.alive_count() == 2
        q.close()
        pool.join(timeout=5.0)
        assert not pool.any_alive()
