"""Admission control and deadline stamping in :class:`JobQueue`."""

import pytest

from repro.errors import QueueClosedError, QueueFullError
from repro.service.jobs import SolveRequest
from repro.service.queue import JobQueue

pytestmark = pytest.mark.service


class FakeClock:
    """Deterministic monotonic clock the tests can advance by hand."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def req(job_id="j", n=50):
    return SolveRequest(job_id=job_id, n=n)


class TestAdmission:
    def test_fifo_order(self):
        q = JobQueue(max_depth=4)
        for i in range(3):
            q.submit(req(f"j{i}"), index=i)
        assert [q.pull().request.job_id for _ in range(3)] == ["j0", "j1", "j2"]

    def test_full_queue_rejects_nonblocking(self):
        q = JobQueue(max_depth=2)
        q.submit(req("a"))
        q.submit(req("b"))
        with pytest.raises(QueueFullError, match="max depth 2"):
            q.submit(req("c"))
        assert q.depth == 2

    def test_closed_queue_rejects(self):
        q = JobQueue(max_depth=2)
        q.close()
        with pytest.raises(QueueClosedError):
            q.submit(req("late"))

    def test_pull_returns_none_when_closed_and_drained(self):
        q = JobQueue(max_depth=2)
        q.submit(req("a"))
        q.close()
        assert q.pull().request.job_id == "a"
        assert q.pull() is None

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)


class TestDeadlines:
    def test_deadline_stamped_from_admission(self):
        clock = FakeClock(100.0)
        q = JobQueue(max_depth=4, clock=clock)
        job = q.submit(SolveRequest(job_id="d", n=50, deadline_s=2.5))
        assert job.submitted_at == 100.0
        assert job.deadline_at == 102.5
        assert not job.expired(102.5)
        assert job.expired(102.51)

    def test_default_deadline_applies_only_without_own(self):
        clock = FakeClock(10.0)
        q = JobQueue(max_depth=4, clock=clock)
        own = q.submit(SolveRequest(job_id="a", n=50, deadline_s=1.0),
                       default_deadline_s=9.0)
        inherited = q.submit(SolveRequest(job_id="b", n=50),
                             default_deadline_s=9.0)
        unbounded = q.submit(SolveRequest(job_id="c", n=50))
        assert own.deadline_at == 11.0
        assert inherited.deadline_at == 19.0
        assert unbounded.deadline_at is None
        assert not unbounded.expired(1e9)
