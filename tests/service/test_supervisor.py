"""Dead-worker recovery: requeue, respawn budget, poison quarantine."""

import json

import pytest

from repro.service import ArtifactCache, SolveRequest, run_batch
from repro.service.batch import BatchStats, iter_batch
from repro.service.jobs import STATUS_CRASHED, STATUS_QUARANTINED
from repro.service.queue import JobQueue, QueuedJob
from repro.service.supervisor import Supervisor, WorkerState

pytestmark = pytest.mark.service


def reqs(count, n=60):
    return [SolveRequest(job_id=f"j{i}", n=n, seed=1) for i in range(count)]


class TestWorkerState:
    def test_take_current_claims_exactly_once(self):
        state = WorkerState(0)
        job = QueuedJob(request=SolveRequest(job_id="x", n=50),
                        submitted_at=0.0, deadline_at=None, index=0)
        assert state.note_pull(job, 1.0) == 1
        assert state.busy
        assert state.take_current() is job
        assert state.take_current() is None
        assert not state.busy

    def test_pull_ordinals_count_across_notes(self):
        state = WorkerState(0)
        job = QueuedJob(request=SolveRequest(job_id="x", n=50),
                        submitted_at=0.0, deadline_at=None, index=0)
        for expected in (1, 2, 3):
            assert state.note_pull(job, 0.0) == expected
            state.note_done(0.0)
        snap = state.as_dict()
        assert snap["pulls"] == 3 and snap["completed"] == 3

    def test_poison_kills_must_be_positive(self):
        class PoolStub:
            """Minimal pool shape the Supervisor constructor touches."""
            workers = 1
        with pytest.raises(ValueError, match="poison_kills"):
            Supervisor(PoolStub(), poison_kills=0)


class TestRecovery:
    def test_killed_job_is_requeued_and_completes(self):
        # slot 0's first pull dies before the job runs; the supervisor
        # requeues it and respawns the worker, so everything finishes ok
        report = run_batch(reqs(3), workers=1,
                           chaos="kill:worker=0,pull=1",
                           poll_interval_s=0.01)
        assert report.ok
        assert len(report.results) == 3
        assert report.supervisor["crashes"] == 1
        assert report.supervisor["restarts"] == 1
        assert report.supervisor["requeued"] == 1
        assert report.supervisor["quarantined"] == 0

    def test_phase_end_kill_loses_the_work_not_the_job(self):
        # the result was computed but never delivered; the re-run must
        # produce the identical answer (determinism) with one crash
        baseline = run_batch(reqs(2), workers=1)
        report = run_batch(reqs(2), workers=1,
                           chaos="kill:worker=0,pull=2,phase=end",
                           poll_interval_s=0.01)
        assert report.ok
        assert report.supervisor["crashes"] == 1
        assert ([r.final_length for r in report.results]
                == [r.final_length for r in baseline.results])

    def test_poison_job_is_quarantined_with_sidecar(self, tmp_path):
        # job at index 1 kills its worker on both attempts (pulls 2 and
        # 3 of slot 0 are the same requeued job)
        sidecar = tmp_path / "q.jsonl"
        stats = BatchStats()
        results = list(iter_batch(
            reqs(4), workers=1, chaos="kill:worker=0,pull=2;kill:worker=0,pull=5",
            poison_kills=2, quarantine_path=sidecar,
            poll_interval_s=0.01, stats=stats,
        ))
        assert len(results) == 4
        statuses = {r.job_id: r.status for r in results}
        assert STATUS_QUARANTINED in statuses.values()
        assert stats.supervisor["crashes"] == 2
        assert stats.supervisor["quarantined"] == 1
        assert stats.supervisor["requeued"] == 1
        records = [json.loads(line) for line in
                   sidecar.read_text().splitlines()]
        assert len(records) == 1
        quarantined_id = next(j for j, s in statuses.items()
                              if s == STATUS_QUARANTINED)
        assert records[0]["id"] == quarantined_id
        assert records[0]["request"]["n"] == 60

    def test_exhausted_restart_budget_synthesizes_crashed(self):
        # one worker, zero restarts: its death strands the backlog, and
        # the supervisor must fail every leftover job instead of hanging
        stats = BatchStats()
        results = list(iter_batch(
            reqs(3), workers=1, chaos="kill:worker=0,pull=1",
            max_restarts=0, poll_interval_s=0.01, stats=stats,
        ))
        assert len(results) == 3  # exactly one result per job, no hang
        assert all(r.status == STATUS_CRASHED for r in results)
        assert all("restart budget" in r.error for r in results)
        assert stats.supervisor["restarts"] == 0

    def test_survivors_cover_for_a_dead_peer(self):
        # two workers, one dies and cannot respawn: the survivor must
        # finish the whole batch including the requeued orphan. Jobs are
        # sized well above the poll interval so the supervision pass that
        # requeues the orphan runs while the survivor is still working.
        report = run_batch(reqs(6, n=250), workers=2,
                           chaos="kill:worker=0,pull=1",
                           max_restarts=0, poll_interval_s=0.001)
        assert report.ok
        assert len(report.results) == 6
        assert report.supervisor["crashes"] == 1
        assert report.supervisor["requeued"] == 1
        assert report.supervisor["restarts"] == 0

    def test_healthy_pool_reports_quiet_supervision(self):
        report = run_batch(reqs(4), workers=2, cache=ArtifactCache())
        assert report.ok
        assert report.supervisor == {
            "crashes": 0, "restarts": 0, "quarantined": 0,
            "requeued": 0, "max_restarts": 4,
        }


class TestQueueRecoveryPaths:
    def test_requeue_bypasses_close_and_depth(self):
        q = JobQueue(max_depth=1)
        job = q.submit(SolveRequest(job_id="a", n=50))
        pulled = q.pull()
        q.close()
        q.requeue(pulled)  # owed a result: re-admission must succeed
        assert q.depth == 1
        assert not q.closed_and_empty
        assert q.pull() is job
        assert q.closed_and_empty

    def test_drain_nowait_empties_atomically(self):
        q = JobQueue(max_depth=4)
        for i in range(3):
            q.submit(SolveRequest(job_id=f"j{i}", n=50))
        drained = q.drain_nowait()
        assert [j.request.job_id for j in drained] == ["j0", "j1", "j2"]
        assert q.depth == 0
        assert q.drain_nowait() == []
