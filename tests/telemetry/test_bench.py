"""Tests for the bench ledger, runner, and regression gate."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.telemetry import (
    BENCH_SCHEMA_VERSION,
    BenchRun,
    BenchRunner,
    ScenarioResult,
    append_ledger,
    compare_runs,
    load_ledger,
    load_run,
    render_comparison,
    render_run,
    save_run,
)
from repro.telemetry.bench import (
    METRIC_POLICIES,
    SCENARIOS,
    MetricPolicy,
    bench_path,
    filter_run,
    run_from_dict,
    run_to_dict,
)


def make_run(label="base", **overrides):
    """A small two-scenario run with hand-picked metric values."""
    metrics_a = {"final_length": 1000.0, "modeled_seconds": 0.5,
                 "checks_per_second": 2e9, "wall_seconds": 1.0}
    metrics_b = {"final_length": 2000.0, "faults_injected": 2.0}
    metrics_a.update(overrides.get("a", {}))
    metrics_b.update(overrides.get("b", {}))
    return BenchRun(
        label=label, created="2026-01-01T00:00:00Z", smoke=True,
        results=(
            ScenarioResult("alpha", 100, "GTX", "gpu", metrics_a),
            ScenarioResult("beta", 200, "GTX+GTX", "multi-gpu", metrics_b),
        ),
    )


class TestRoundTrip:
    def test_dict_round_trip_exact(self):
        run = make_run()
        assert run_from_dict(run_to_dict(run)) == run

    def test_file_round_trip_exact(self, tmp_path):
        run = make_run()
        path = save_run(run, tmp_path)
        assert path == bench_path("base", tmp_path)
        assert path.name == "BENCH_base.json"
        assert load_run(path) == run

    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(
        st.text(min_size=1, max_size=12),
        st.floats(allow_nan=False, allow_infinity=False),
        max_size=6,
    ))
    def test_float_metrics_survive_json(self, metrics):
        run = BenchRun(
            label="h", created="2026-01-01T00:00:00Z", smoke=False,
            results=(ScenarioResult("s", 1, "d", "gpu", metrics),),
        )
        # through an actual JSON byte round-trip, as the ledger does
        data = json.loads(json.dumps(run_to_dict(run)))
        assert run_from_dict(data) == run


class TestSchemaValidation:
    def test_missing_schema_version(self):
        with pytest.raises(ExperimentError, match="schema_version"):
            run_from_dict({"label": "x"})

    def test_unsupported_schema_version(self):
        data = run_to_dict(make_run())
        data["schema_version"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(ExperimentError, match="unsupported"):
            run_from_dict(data)

    def test_malformed_results(self):
        data = run_to_dict(make_run())
        data["results"] = [{"scenario": "x"}]  # missing n/device/...
        with pytest.raises(ExperimentError, match="malformed"):
            run_from_dict(data)

    def test_load_run_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError, match="not found"):
            load_run(tmp_path / "BENCH_nope.json")

    def test_load_run_invalid_json(self, tmp_path):
        p = tmp_path / "BENCH_bad.json"
        p.write_text("{broken")
        with pytest.raises(ExperimentError, match="not valid JSON"):
            load_run(p)


class TestLedger:
    def test_append_and_load_preserves_order(self, tmp_path):
        ledger = tmp_path / "benchmarks" / "ledger.jsonl"
        first, second = make_run("one"), make_run("two")
        append_ledger(first, ledger)
        append_ledger(second, ledger)
        runs = load_ledger(ledger)
        assert [r.label for r in runs] == ["one", "two"]
        assert runs[0] == first and runs[1] == second

    def test_missing_ledger_is_empty(self, tmp_path):
        assert load_ledger(tmp_path / "absent.jsonl") == []

    def test_corrupt_line_reports_line_number(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        append_ledger(make_run(), ledger)
        with ledger.open("a") as fh:
            fh.write("not json\n")
        with pytest.raises(ExperimentError, match="line 2"):
            load_ledger(ledger)


class TestRunner:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ExperimentError, match="unknown bench scenario"):
            BenchRunner(scenarios=["no-such-scenario"])

    def test_subset_preserves_declared_order(self):
        runner = BenchRunner(scenarios=["gpu-sim-kroA200", "seq-berlin52"])
        assert [s.key for s in runner.scenarios] == [
            "seq-berlin52", "gpu-sim-kroA200"]

    def test_smoke_selects_flagged_subset(self):
        smoke_keys = [s.key for s in BenchRunner(smoke=True).scenarios]
        assert "seq-berlin52" in smoke_keys
        assert "gpu-batch-pr2392" not in smoke_keys
        assert len(smoke_keys) < len(SCENARIOS)

    def test_default_labels(self):
        assert BenchRunner(smoke=True).label == "smoke"
        assert BenchRunner().label == "full"
        assert BenchRunner(label="nightly").label == "nightly"

    def test_single_scenario_collects_metrics(self):
        run = BenchRunner(scenarios=["seq-berlin52"], label="t").run()
        assert run.scenario_keys == ["seq-berlin52"]
        res = run.result("seq-berlin52")
        assert res.backend == "cpu-sequential"
        m = res.metrics
        for key in ("final_length", "modeled_seconds", "kernel_seconds",
                    "wall_seconds", "checks_per_second", "pair_checks",
                    "transfer_bytes", "faults_injected",
                    "scenario_wall_seconds"):
            assert key in m
        assert m["modeled_seconds"] > 0
        assert m["faults_injected"] == 0.0

    @pytest.mark.bench
    def test_smoke_suite_end_to_end(self):
        run = BenchRunner(smoke=True).run()
        assert run.smoke is True
        # the faulted scenario actually injected faults
        faulted = run.result("faulted-pool-a280")
        assert faulted.metrics["faults_injected"] > 0
        # the instrumented GPU scenario recorded roofline percentiles
        simulated = run.result("gpu-sim-kroA200")
        assert simulated.metrics["roofline_attained_gflops_p50"] > 0
        # identical re-run of a deterministic scenario gates clean
        again = BenchRunner(scenarios=["seq-berlin52"]).run()
        report = compare_runs(run, again)
        gated = [e for e in report.entries if e.scenario == "seq-berlin52"]
        assert all(e.status != "regressed" for e in gated)


class TestGate:
    def test_identical_runs_pass(self):
        report = compare_runs(make_run("a"), make_run("b"))
        assert report.ok
        assert report.regressions == []

    def test_worse_deterministic_metric_fails(self):
        report = compare_runs(
            make_run("a"), make_run("b", a={"final_length": 1001.0}))
        assert not report.ok
        bad = report.regressions
        assert [(e.scenario, e.metric) for e in bad] == [
            ("alpha", "final_length")]
        assert bad[0].rel_change == pytest.approx(0.001)

    def test_improvement_is_not_a_failure(self):
        report = compare_runs(
            make_run("a"), make_run("b", a={"final_length": 900.0,
                                            "checks_per_second": 3e9}))
        assert report.ok
        statuses = {(e.metric): e.status for e in report.entries
                    if e.scenario == "alpha"}
        assert statuses["final_length"] == "improved"
        assert statuses["checks_per_second"] == "improved"

    def test_throughput_drop_beyond_tolerance_fails(self):
        report = compare_runs(
            make_run("a"), make_run("b", a={"checks_per_second": 1.9e9}))
        assert not report.ok  # -5% > the 2% slack

    def test_throughput_drop_within_tolerance_passes(self):
        report = compare_runs(
            make_run("a"), make_run("b", a={"checks_per_second": 1.99e9}))
        assert report.ok

    def test_wall_noise_floor_forgives(self):
        # +0.2 s is inside the 0.25 s absolute floor even though it is
        # +20% relative
        report = compare_runs(
            make_run("a"), make_run("b", a={"wall_seconds": 1.2}))
        assert report.ok

    def test_missing_scenario_fails(self):
        candidate = BenchRun(
            label="c", created="2026-01-01T00:00:00Z", smoke=True,
            results=(make_run().results[0],),  # "beta" vanished
        )
        report = compare_runs(make_run(), candidate)
        assert not report.ok
        assert any(e.scenario == "beta" and e.status == "missing"
                   for e in report.regressions)

    def test_missing_gated_metric_fails_but_ungated_does_not(self):
        base = make_run("a", a={"unknown_extra": 5.0})
        cand = make_run("b")
        del_metric = dict(cand.results[0].metrics)
        del_metric.pop("modeled_seconds")
        cand = BenchRun(
            label="b", created=cand.created, smoke=True,
            results=(ScenarioResult("alpha", 100, "GTX", "gpu", del_metric),
                     cand.results[1]),
        )
        report = compare_runs(base, cand)
        statuses = {e.metric: e.status for e in report.entries
                    if e.scenario == "alpha"}
        assert statuses["modeled_seconds"] == "missing"   # gated: fails
        assert statuses["unknown_extra"] == "ok"          # ungated: fine
        assert not report.ok

    def test_new_candidate_metric_is_informational(self):
        report = compare_runs(
            make_run("a"), make_run("b", a={"brand_new": 1.0}))
        assert report.ok
        new = next(e for e in report.entries if e.metric == "brand_new")
        assert new.status == "new"
        assert new.baseline is None

    def test_custom_policy_overrides_default(self):
        strict = dict(METRIC_POLICIES)
        strict["wall_seconds"] = MetricPolicy("lower", 0.0, 0.0)
        report = compare_runs(
            make_run("a"), make_run("b", a={"wall_seconds": 1.01}),
            policies=strict,
        )
        assert not report.ok


class TestRenderers:
    def test_render_run_lists_scenarios(self):
        out = render_run(make_run())
        assert "alpha" in out and "beta" in out
        assert "smoke suite" in out

    def test_render_comparison_pass_and_fail(self):
        ok = render_comparison(compare_runs(make_run("a"), make_run("b")))
        assert "PASS" in ok
        bad = render_comparison(compare_runs(
            make_run("a"), make_run("b", a={"final_length": 1100.0})))
        assert "FAIL" in bad
        assert "final_length" in bad


class TestCli:
    def test_bench_cli_writes_run_and_ledger(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--scenario", "seq-berlin52",
                     "--label", "one"]) == 0
        assert (tmp_path / "BENCH_one.json").exists()
        runs = load_ledger(tmp_path / "benchmarks" / "ledger.jsonl")
        assert [r.label for r in runs] == ["one"]
        assert "seq-berlin52" in capsys.readouterr().out

    def test_bench_cli_gate_pass_and_fail_exit_codes(self, tmp_path, capsys,
                                                     monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--scenario", "seq-berlin52",
                     "--label", "base", "--no-ledger"]) == 0
        capsys.readouterr()
        # identical re-run gates clean
        assert main(["bench", "--scenario", "seq-berlin52", "--label",
                     "cand", "--against", "BENCH_base.json",
                     "--no-ledger"]) == 0
        assert "PASS" in capsys.readouterr().out
        # doctor the baseline so the candidate must regress → exit 3
        doctored = load_run(tmp_path / "BENCH_base.json")
        metrics = dict(doctored.results[0].metrics)
        metrics["final_length"] -= 1.0
        save_run(BenchRun(
            label="tight", created=doctored.created, smoke=doctored.smoke,
            results=(ScenarioResult(
                "seq-berlin52", doctored.results[0].n,
                doctored.results[0].device, doctored.results[0].backend,
                metrics),),
        ), tmp_path)
        assert main(["bench", "--scenario", "seq-berlin52", "--label",
                     "cand2", "--against", "BENCH_tight.json",
                     "--no-ledger"]) == 3
        assert "FAIL" in capsys.readouterr().out

    def test_bench_cli_json_output(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--scenario", "seq-berlin52", "--json",
                     "--no-ledger"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["results"][0]["scenario"] == "seq-berlin52"

    def test_bench_cli_unknown_scenario_exits_2(self, tmp_path, capsys,
                                                monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--scenario", "bogus"]) == 2
        assert "unknown bench scenario" in capsys.readouterr().err

    def test_bench_cli_no_overlap_baseline_exits_4(self, tmp_path, capsys,
                                                   monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        save_run(BenchRun(
            label="phantom", created="2026-01-01T00:00:00Z", smoke=True,
            results=(ScenarioResult("retired-scenario", 1, "X", "gpu",
                                    {"final_length": 1.0}),),
        ), tmp_path)
        capsys.readouterr()
        assert main(["bench", "--scenario", "seq-berlin52", "--label",
                     "cand", "--against", "BENCH_phantom.json",
                     "--no-ledger"]) == 4
        err = capsys.readouterr().err
        assert "shares no scenarios" in err
        assert len(err.strip().splitlines()) == 1

    def test_bench_cli_scenario_subset_gates_clean(self, tmp_path, capsys,
                                                   monkeypatch):
        # baseline covers two scenarios; gating a one-scenario run must
        # not report the deliberately-skipped one as missing
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--scenario", "seq-berlin52", "--scenario",
                     "gpu-sim-kroA200", "--label", "base",
                     "--no-ledger"]) == 0
        capsys.readouterr()
        assert main(["bench", "--scenario", "seq-berlin52", "--label",
                     "cand", "--against", "BENCH_base.json",
                     "--no-ledger"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "missing" not in out


class TestFilterRun:
    def test_keeps_only_named_scenarios(self):
        run = make_run()
        sub = filter_run(run, ["beta"])
        assert sub.scenario_keys == ["beta"]
        assert sub.label == run.label
        assert run.scenario_keys == ["alpha", "beta"]  # original untouched

    def test_unknown_names_filter_to_empty(self):
        assert filter_run(make_run(), ["gamma"]).scenario_keys == []


class TestServiceScenario:
    def test_registered_with_smoke_flag(self):
        byname = {s.key: s for s in SCENARIOS}
        assert "service-batch" in byname
        assert byname["service-batch"].smoke

    def test_deterministic_cache_metrics(self):
        run = BenchRunner(scenarios=["service-batch"], label="svc").run()
        m = run.result("service-batch").metrics
        # 8 jobs over 2 instances: 3 misses per instance (instance,
        # tour, knn), 6 hits per instance (3 repeat jobs x instance+tour)
        assert m["jobs_ok"] == 8.0
        assert m["jobs_total"] == 8.0
        assert m["cache_hits"] == 12.0
        assert m["cache_misses"] == 6.0
        assert m["cache_evictions"] == 0.0

    def test_gate_policies_cover_service_metrics(self):
        for name in ("jobs_ok", "cache_hits", "cache_misses"):
            assert name in METRIC_POLICIES
