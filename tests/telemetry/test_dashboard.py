"""Tests for the HTML/ASCII run dashboard over ledger + trace artifacts."""

import pytest

from repro.telemetry import (
    BenchRun,
    ScenarioResult,
    compare_runs,
    render_dashboard_ascii,
    render_dashboard_html,
    write_dashboard,
)
from repro.telemetry.dashboard import (
    HEALTH_METRICS,
    TREND_METRICS,
    ascii_sparkline,
    service_health_rows,
    trace_lanes,
    trace_roofline_points,
    trend_series,
)


def ledger_runs(count=3):
    """A synthetic ledger: one scenario drifting across *count* runs."""
    runs = []
    for i in range(count):
        runs.append(BenchRun(
            label=f"r{i}", created=f"2026-01-0{i + 1}T00:00:00Z", smoke=True,
            results=(ScenarioResult("alpha", 100, "GTX", "gpu", {
                "modeled_seconds": 0.5 + 0.1 * i,
                "kernel_seconds": 0.4 + 0.1 * i,
                "checks_per_second": 1e9 * (1 + i),
                "gflops": 100.0 + i,
                "final_length": 1000.0,
            }),),
        ))
    return runs


def sample_trace():
    """A minimal Chrome trace: metadata, host span, two roofline launches."""
    return {"traceEvents": [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "host (wall)"}},
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_sort_index",
         "args": {"sort_index": 0}},
        {"ph": "M", "pid": 2, "tid": 0, "name": "process_name",
         "args": {"name": "modeled device"}},
        {"ph": "M", "pid": 2, "tid": 0, "name": "process_sort_index",
         "args": {"sort_index": 1}},
        {"ph": "M", "pid": 2, "tid": 1, "name": "thread_name",
         "args": {"name": "gtx680-cuda#0"}},
        {"ph": "M", "pid": 2, "tid": 1, "name": "thread_sort_index",
         "args": {"sort_index": 1}},
        {"ph": "M", "pid": 2, "tid": 2, "name": "thread_name",
         "args": {"name": "gtx680-cuda#1"}},
        {"ph": "M", "pid": 2, "tid": 2, "name": "thread_sort_index",
         "args": {"sort_index": 2}},
        {"ph": "X", "pid": 1, "tid": 0, "name": "local_search",
         "ts": 0.0, "dur": 900.0, "args": {}},
        {"ph": "X", "pid": 2, "tid": 1, "name": "2opt-ordered",
         "ts": 0.0, "dur": 120.0,
         "args": {"device": "GeForce GTX 680", "attained_gflops": 500.0,
                  "arithmetic_intensity": 12.0, "occupancy": 0.8}},
        {"ph": "X", "pid": 2, "tid": 2, "name": "2opt-ordered",
         "ts": 50.0, "dur": 100.0,
         "args": {"device": "GeForce GTX 680", "attained_gflops": 450.0,
                  "arithmetic_intensity": 11.0, "occupancy": 0.75}},
    ]}


class TestTraceParsing:
    def test_roofline_points_only_from_instrumented_launches(self):
        points = trace_roofline_points(sample_trace())
        assert len(points) == 2  # the host span carries no roofline args
        assert {p["device"] for p in points} == {"GeForce GTX 680"}
        assert points[0]["gflops"] == 500.0
        assert points[0]["intensity"] == 12.0

    def test_lanes_named_and_ordered_by_sort_index(self):
        lanes = trace_lanes(sample_trace())
        assert [l["lane"] for l in lanes] == [
            "tid 0", "gtx680-cuda#0", "gtx680-cuda#1"]
        assert lanes[0]["process"] == "host (wall)"
        assert lanes[1]["process"] == "modeled device"
        assert lanes[1]["bars"] == [(0.0, 120.0, "2opt-ordered")]

    def test_empty_trace(self):
        assert trace_roofline_points({}) == []
        assert trace_lanes({}) == []


class TestTrends:
    def test_trend_series_covers_headline_metrics(self):
        series = trend_series(ledger_runs())
        keys = {(s["scenario"], s["metric"]) for s in series}
        assert keys == {("alpha", m) for m in TREND_METRICS}
        modeled = next(s for s in series if s["metric"] == "modeled_seconds")
        assert modeled["values"] == pytest.approx([0.5, 0.6, 0.7])

    def test_trend_series_gap_for_absent_scenario(self):
        runs = ledger_runs(2)
        runs.append(BenchRun(
            label="r2", created="2026-01-03T00:00:00Z", smoke=True,
            results=(ScenarioResult("other", 50, "CPU", "cpu-sequential",
                                    {"modeled_seconds": 1.0}),),
        ))
        series = trend_series(runs)
        alpha = next(s for s in series if s["scenario"] == "alpha"
                     and s["metric"] == "modeled_seconds")
        assert alpha["values"] == [0.5, 0.6, None]

    def test_ascii_sparkline_shape(self):
        line = ascii_sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert ascii_sparkline([None, 1.0])[0] == " "
        assert ascii_sparkline([None, None]) == ""
        # a flat series renders, it does not divide by zero
        assert len(ascii_sparkline([2.0, 2.0])) == 2


def service_run(label="svc", **overrides):
    """A ledger run with one service scenario carrying health vitals."""
    vitals = {
        "jobs_ok": 5.0, "jobs_total": 6.0, "jobs_crashed": 0.0,
        "jobs_quarantined": 1.0, "supervisor_crashes": 2.0,
        "supervisor_restarts": 1.0, "supervisor_requeued": 1.0,
        "breaker_opened": 0.0, "breaker_fast_fails": 0.0,
        "wall_seconds": 0.4,  # non-health metric: must not leak into vitals
    }
    vitals.update(overrides)
    return BenchRun(
        label=label, created="2026-02-01T00:00:00Z", smoke=True,
        results=(ScenarioResult("service-chaos", 100, "host", "service",
                                vitals),),
    )


class TestServiceHealth:
    def test_rows_from_latest_run_service_scenarios_only(self):
        runs = ledger_runs(2) + [service_run()]
        rows = service_health_rows(runs)
        assert len(rows) == 1
        assert rows[0]["scenario"] == "service-chaos"
        assert set(rows[0]["vitals"]) <= set(HEALTH_METRICS)
        assert rows[0]["vitals"]["jobs_quarantined"] == 1.0
        assert "wall_seconds" not in rows[0]["vitals"]

    def test_no_service_scenarios_means_no_rows(self):
        assert service_health_rows(ledger_runs()) == []
        assert service_health_rows([]) == []
        # service run present but not latest: the panel shows the latest
        assert service_health_rows([service_run()] + ledger_runs(1)) == []

    def test_ascii_dashboard_renders_health_table(self):
        out = render_dashboard_ascii(ledger_runs(1) + [service_run()])
        assert "Service health" in out
        assert "service-chaos" in out
        assert "jobs_quarantined" in out

    def test_html_panel_flags_recovery_activity(self):
        html_out = render_dashboard_html(ledger_runs(1) + [service_run()])
        assert "Service health" in html_out
        assert "service-chaos ⚠" in html_out   # quarantine fired

    def test_html_panel_quiet_run_unflagged_with_gaps(self):
        run = service_run(jobs_quarantined=0.0, supervisor_crashes=0.0)
        del run.results[0].metrics["breaker_fast_fails"]
        html_out = render_dashboard_html([run])
        assert "Service health" in html_out
        assert "service-chaos ⚠" not in html_out  # legend keeps the glyph
        assert "<td>-</td>" in html_out       # absent vital renders as a gap

    def test_html_without_service_rows_omits_panel(self):
        assert "Service health" not in render_dashboard_html(ledger_runs())


class TestAsciiDashboard:
    def test_contains_trends_roofline_and_gate(self):
        runs = ledger_runs()
        report = compare_runs(runs[-2], runs[-1])
        out = render_dashboard_ascii(runs, trace=sample_trace(),
                                     comparison=report)
        assert "alpha" in out
        assert "modeled_seconds" in out
        assert "GeForce GTX 680" in out      # roofline table row
        assert "bench gate" in out

    def test_empty_ledger_message(self):
        out = render_dashboard_ascii([])
        assert "0 run(s)" in out


class TestHtmlDashboard:
    def test_sections_present(self):
        runs = ledger_runs()
        html_out = render_dashboard_html(
            runs, trace=sample_trace(),
            comparison=compare_runs(runs[0], runs[-1]),
        )
        assert html_out.lower().startswith("<!doctype html>")
        assert "Metric trajectories" in html_out
        assert "Roofline" in html_out
        assert "Span waterfall" in html_out
        assert "Regression gate" in html_out
        assert "<svg" in html_out
        # dark mode is selected, not an automatic inversion
        assert "prefers-color-scheme" in html_out
        # device identity is direct-labeled on the roofline scatter
        assert "GeForce GTX 680" in html_out

    def test_no_trace_shows_trends_only(self):
        html_out = render_dashboard_html(ledger_runs())
        assert "Metric trajectories" in html_out
        assert "Span waterfall" not in html_out

    def test_trace_without_samples_shows_empty_state(self):
        trace = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 0, "name": "host", "ts": 0.0,
             "dur": 10.0, "args": {}},
        ]}
        html_out = render_dashboard_html(ledger_runs(), trace=trace)
        assert "no per-launch roofline samples" in html_out

    def test_self_contained_no_external_assets(self):
        html_out = render_dashboard_html(ledger_runs(), trace=sample_trace())
        assert "http://" not in html_out and "https://" not in html_out
        assert "<script src" not in html_out

    def test_write_dashboard(self, tmp_path):
        path = write_dashboard(tmp_path / "dash.html", ledger_runs())
        assert path.exists()
        assert "Metric trajectories" in path.read_text()


def sample_flight():
    """Two flight dump records; the newer one is the charted crash."""
    return [
        {"reason": "crash", "worker": 0, "job": "cx-1", "events": [
            {"seq": 4, "kind": "job.admitted", "worker": -1,
             "job_id": "cx-1"},
        ]},
        {"reason": "quarantine", "worker": 0, "job": "cx-1", "events": [
            {"seq": 4, "kind": "job.admitted", "job_id": "cx-1"},
            {"seq": 9, "kind": "worker.crashed", "worker": 0,
             "job_id": "cx-1"},
            {"seq": 12, "kind": "job.quarantined", "worker": 0,
             "job_id": "cx-1"},
        ]},
    ]


@pytest.mark.observe
class TestFlightPanel:
    def test_summary_rows_chart_only_the_latest_dump(self):
        from repro.telemetry.dashboard import flight_summary_rows

        rows = flight_summary_rows(sample_flight())
        assert [r["seq"] for r in rows] == [4, 9, 12]
        assert rows[1]["kind"] == "worker.crashed"
        assert flight_summary_rows([]) == []

    def test_html_last_flight_section(self):
        html_out = render_dashboard_html(ledger_runs(), flight=sample_flight())
        assert "Last flight" in html_out
        assert "quarantine on worker 0, job cx-1" in html_out
        assert "worker.crashed" in html_out
        assert "2 recording(s)" in html_out

    def test_ascii_last_flight_table(self):
        text = render_dashboard_ascii(ledger_runs(), flight=sample_flight())
        assert "Last flight" in text
        assert "job.quarantined" in text

    def test_no_flight_no_panel(self):
        assert "Last flight" not in render_dashboard_html(ledger_runs())
        assert "Last flight" not in render_dashboard_html(ledger_runs(),
                                                          flight=[])
