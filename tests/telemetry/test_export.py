"""Tests for the JSONL / Chrome-trace / ASCII exporters."""

import json

import pytest

from repro.gpusim.stats import KernelStats
from repro.gpusim.timing_model import TimeBreakdown
from repro.gpusim.trace import TraceCollector
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    chrome_trace_from_collector,
    render_metrics,
    render_span_tree,
    spans_to_jsonl,
    to_chrome_trace,
)
from repro.telemetry.export import DEVICE_PID, HOST_PID


def build_tracer():
    """A small representative tracer: nested host spans + device events."""
    tracer = Tracer()
    with tracer.span("root", category="test", n=10):
        with tracer.span("child") as sp:
            sp.add_modeled(1e-3)
            tracer.device_event("kernel-a", 5e-4, device="sim")
            tracer.device_event("kernel-b", 2e-4)
    return tracer


def assert_valid_chrome_trace(trace: dict) -> None:
    """Schema check for the Trace Event Format (JSON object variant)."""
    assert isinstance(trace, dict)
    events = trace["traceEvents"]
    assert isinstance(events, list) and events
    for e in events:
        assert e["ph"] in ("X", "M")
        assert isinstance(e["pid"], int)
        assert isinstance(e["tid"], int)
        assert isinstance(e["name"], str) and e["name"]
        if e["ph"] == "X":
            assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0
            assert isinstance(e["dur"], (int, float)) and e["dur"] >= 0
        assert isinstance(e.get("args", {}), dict)
    # must round-trip through JSON (chrome loads a file, not objects)
    json.loads(json.dumps(trace))


class TestChromeTrace:
    def test_schema_valid(self):
        assert_valid_chrome_trace(to_chrome_trace(build_tracer()))

    def test_host_and_device_on_separate_pids(self):
        events = to_chrome_trace(build_tracer())["traceEvents"]
        host = [e for e in events if e["ph"] == "X" and e["pid"] == HOST_PID]
        device = [e for e in events if e["ph"] == "X" and e["pid"] == DEVICE_PID]
        assert {e["name"] for e in host} == {"root", "child"}
        assert {e["name"] for e in device} == {"kernel-a", "kernel-b"}

    def test_device_track_uses_modeled_time(self):
        events = to_chrome_trace(build_tracer())["traceEvents"]
        a = next(e for e in events if e["name"] == "kernel-a" and e["ph"] == "X")
        b = next(e for e in events if e["name"] == "kernel-b" and e["ph"] == "X")
        assert a["ts"] == pytest.approx(0.0)
        assert a["dur"] == pytest.approx(500.0)  # 5e-4 s in us
        assert b["ts"] == pytest.approx(500.0)   # cumulative device clock
        # distinct kernels get distinct thread rows
        assert a["tid"] != b["tid"]

    def test_process_metadata_present(self):
        events = to_chrome_trace(build_tracer())["traceEvents"]
        names = {(e["pid"], e["name"]) for e in events if e["ph"] == "M"}
        assert (HOST_PID, "process_name") in names
        assert (DEVICE_PID, "process_name") in names

    def test_non_json_attrs_coerced(self):
        tracer = Tracer()
        with tracer.span("s", obj=object()):
            pass
        assert_valid_chrome_trace(to_chrome_trace(tracer))


class TestLaneOrdering:
    """Stable viewer ordering: sort-index metadata, sorted lane tids."""

    def test_process_sort_indices_put_host_first(self):
        events = to_chrome_trace(build_tracer())["traceEvents"]
        order = {e["pid"]: e["args"]["sort_index"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_sort_index"}
        assert order[HOST_PID] == 0
        assert order[DEVICE_PID] == 1

    def test_every_device_lane_has_thread_sort_index(self):
        events = to_chrome_trace(build_tracer())["traceEvents"]
        named = {e["tid"] for e in events if e["ph"] == "M"
                 and e["pid"] == DEVICE_PID and e["name"] == "thread_name"}
        sorted_idx = {e["tid"]: e["args"]["sort_index"] for e in events
                      if e["ph"] == "M" and e["pid"] == DEVICE_PID
                      and e["name"] == "thread_sort_index"}
        assert named and named == set(sorted_idx)
        assert all(sorted_idx[tid] == tid for tid in named)

    def test_pool_lane_tids_numeric_aware_not_arrival_order(self):
        tracer = Tracer()
        # arrival order deliberately scrambled, with a double-digit index
        for lane in ("gtx680-cuda#10", "gtx680-cuda#2", "gtx680-cuda#1"):
            tracer.device_event("2opt-tiled", 1e-4, track=lane)
        events = to_chrome_trace(tracer)["traceEvents"]
        names = {e["tid"]: e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["pid"] == DEVICE_PID
                 and e["name"] == "thread_name"}
        by_tid = [names[tid] for tid in sorted(names)]
        assert by_tid == ["gtx680-cuda#1", "gtx680-cuda#2", "gtx680-cuda#10"]

    def test_lane_assignment_deterministic_across_arrival_orders(self):
        def trace_for(order):
            tracer = Tracer()
            for lane in order:
                tracer.device_event("k", 1e-4, track=lane)
            return to_chrome_trace(tracer)["traceEvents"]

        lanes = ("a#1", "b#1", "a#2")
        meta_a = [(e["tid"], e["args"]["name"]) for e in trace_for(lanes)
                  if e["ph"] == "M" and e["name"] == "thread_name"
                  and e["pid"] == DEVICE_PID]
        meta_b = [(e["tid"], e["args"]["name"])
                  for e in trace_for(tuple(reversed(lanes)))
                  if e["ph"] == "M" and e["name"] == "thread_name"
                  and e["pid"] == DEVICE_PID]
        assert sorted(meta_a) == sorted(meta_b)


class TestCollectorBridge:
    def test_collector_exports_to_chrome(self):
        tc = TraceCollector()
        t = TimeBreakdown(total=1e-4, compute=5e-5, memory=3e-5, shared=0.0,
                          overhead=2e-5, utilization=1.0)
        tc.add_launch("2opt-ordered", "GTX", 8, 128,
                      KernelStats(pair_checks=10), t)
        tc.add_launch("2opt-ordered", "GTX", 8, 128,
                      KernelStats(pair_checks=10), t)
        trace = chrome_trace_from_collector(tc)
        assert_valid_chrome_trace(trace)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 2
        assert xs[1]["ts"] == pytest.approx(100.0)  # cumulative modeled clock


class TestJsonl:
    def test_one_object_per_span(self):
        tracer = build_tracer()
        lines = spans_to_jsonl(tracer.spans).splitlines()
        assert len(lines) == len(tracer.spans)
        objs = [json.loads(line) for line in lines]
        assert {o["name"] for o in objs} == {"root", "child", "kernel-a",
                                             "kernel-b"}
        child = next(o for o in objs if o["name"] == "child")
        assert child["end_modeled"] - child["start_modeled"] == pytest.approx(1e-3)


class TestAsciiReports:
    def test_tree_aggregates_and_marks_device(self):
        out = render_span_tree(build_tracer())
        assert "root" in out
        assert "  child" in out
        assert "kernel-a [device]" in out
        assert "100.0%" in out

    def test_tree_empty(self):
        assert "no spans" in render_span_tree(Tracer())

    def test_tree_reports_drops(self):
        tracer = Tracer(max_spans=1)
        for _ in range(3):
            with tracer.span("s"):
                pass
        assert "dropped 2" in render_span_tree(tracer)

    def test_tree_aggregates_sibling_counts(self):
        tracer = Tracer()
        with tracer.span("root"):
            for _ in range(5):
                with tracer.span("scan"):
                    pass
        out = render_span_tree(tracer)
        assert "5x" in out

    def test_max_depth_truncates(self):
        out = render_span_tree(build_tracer(), max_depth=0)
        assert "root" in out and "child" not in out

    def test_metrics_table(self):
        reg = MetricsRegistry()
        reg.counter("launches").inc(3)
        reg.gauge("occupancy").set(0.5)
        reg.histogram("seconds").observe(1e-3)
        out = render_metrics(reg)
        assert "launches" in out and "occupancy" in out and "seconds" in out

    def test_metrics_empty(self):
        assert "no metrics" in render_metrics(MetricsRegistry())
