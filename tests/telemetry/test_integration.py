"""End-to-end telemetry: instrumented solver/ILS runs, CLI smoke, overhead.

Covers the acceptance criteria: a profiled ``repro solve`` run emits
schema-valid Chrome trace JSON with host and modeled-device tracks, the
local-search share of modeled time reproduces the paper's >=90 % claim,
and the no-op tracer keeps instrumentation under 5 % of wall time.
"""

import json
import time

import pytest

from repro.cli import main
from repro.core.local_search import LocalSearch
from repro.core.solver import TwoOptSolver
from repro.ils.ils import IteratedLocalSearch
from repro.ils.termination import IterationLimit
from repro.telemetry import NoopTracer, Profiler, get_metrics, get_tracer
from tests.telemetry.test_export import assert_valid_chrome_trace


class TestProfiledSolve:
    @pytest.fixture(scope="class")
    def profiled(self, inst300):
        with Profiler() as prof:
            res = TwoOptSolver("gtx680-cuda", strategy="batch").solve(inst300)
        return prof, res

    def test_span_hierarchy_recorded(self, profiled):
        prof, _ = profiled
        names = {s.name for s in prof.spans}
        assert {"solve", "construct_initial", "local_search",
                "scan"} <= names
        roots = [s.name for s in prof.tracer.roots()]
        assert roots == ["solve"]

    def test_modeled_device_launches_as_child_events(self, profiled):
        prof, res = profiled
        launches = [s for s in prof.spans
                    if s.track == "device" and s.name == "2opt-ordered"]
        assert launches
        total = sum(s.modeled_seconds for s in launches)
        # all modeled kernel time (minus transfers/host apply) is on the track
        assert total <= res.search.modeled_seconds
        assert total >= 0.9 * res.search.modeled_seconds

    def test_local_search_dominates_modeled_time(self, profiled):
        prof, _ = profiled
        assert prof.span_share("local_search") >= 0.90

    def test_span_modeled_matches_result(self, profiled):
        prof, res = profiled
        assert prof.modeled_seconds("local_search") == pytest.approx(
            res.search.modeled_seconds
        )

    def test_chrome_trace_valid(self, profiled):
        prof, _ = profiled
        assert_valid_chrome_trace(prof.chrome_trace())

    def test_report_renders(self, profiled):
        prof, _ = profiled
        out = prof.report()
        assert "solve" in out and "scan" in out and "[device]" in out

    def test_defaults_restored_after_profiler(self, profiled):
        assert get_tracer().enabled is False
        assert get_metrics().enabled is False


class TestProfiledSimulateMode:
    def test_executor_reports_launches_and_metrics(self, inst100):
        ls = LocalSearch("gtx680-cuda", mode="simulate")
        with Profiler() as prof:
            ls.run(inst100.coords_float32(), max_moves=3)
        launches = [s for s in prof.spans if s.name == "2opt-ordered"
                    and s.track == "device"]
        assert launches
        assert launches[0].attrs["device"] == "GeForce GTX 680"
        assert prof.metrics.counter("gpusim.launches").value >= len(launches)
        assert prof.metrics.counter("kernel.pair_checks").value > 0
        assert prof.metrics.histogram("gpusim.launch_seconds").count > 0

    def test_tiled_scan_emits_tile_spans(self, gtx680, small_launch, rng):
        from repro.core.tiling import tiled_best_move

        coords = rng.uniform(0, 1000, (96, 2)).astype("float32")
        with Profiler() as prof:
            tiled_best_move(coords, gtx680, small_launch, range_size=32)
        tiles = [s for s in prof.spans if s.name == "tile"]
        assert len(tiles) == 6  # 3 segments -> 3*(3+1)/2 tiles
        kernels = [s for s in prof.spans if s.name == "2opt-tiled"]
        assert len(kernels) == 6

    def test_transfer_emits_device_event(self, gtx680):
        from repro.gpusim.transfer import transfer_time

        with Profiler() as prof:
            transfer_time(gtx680, 4096)
        ev = [s for s in prof.spans if s.name == "pcie-transfer"]
        assert len(ev) == 1
        assert ev[0].attrs["bytes"] == 4096
        assert prof.metrics.counter("transfer.bytes").value == 4096

    def test_launch_events_carry_roofline_and_occupancy(self, inst100):
        ls = LocalSearch("gtx680-cuda", mode="simulate")
        with Profiler() as prof:
            ls.run(inst100.coords_float32(), max_moves=2)
        launch = next(s for s in prof.spans if s.name == "2opt-ordered"
                      and s.track == "device")
        for key in ("attained_gflops", "attained_bandwidth_gbps",
                    "arithmetic_intensity", "occupancy",
                    "occupancy_limited_by", "flops", "global_bytes",
                    "shared_bytes", "utilization"):
            assert key in launch.attrs
        assert 0 < launch.attrs["occupancy"] <= 1
        assert prof.metrics.histogram(
            "gpusim.roofline.attained_gflops").count > 0
        assert prof.metrics.gauge("gpusim.occupancy.device").value > 0


class TestProfilerReentrancy:
    def test_nested_with_on_same_profiler_restores_defaults(self):
        prof = Profiler()
        with prof:
            with prof:  # e.g. a helper that also wraps in the profiler
                assert get_tracer() is prof.tracer
            # inner exit must NOT tear down the outer installation
            assert get_tracer() is prof.tracer
            assert get_metrics() is prof.metrics
        assert get_tracer().enabled is False
        assert get_metrics().enabled is False

    def test_nested_distinct_profilers_restore_in_order(self):
        outer, inner = Profiler(), Profiler()
        with outer:
            with inner:
                assert get_tracer() is inner.tracer
            assert get_tracer() is outer.tracer
            assert get_metrics() is outer.metrics
        assert isinstance(get_tracer(), NoopTracer)


class TestProfiledILS:
    @pytest.fixture(scope="class")
    def profiled(self, inst300):
        ls = LocalSearch("gtx680-cuda", strategy="batch")
        ils = IteratedLocalSearch(ls, termination=IterationLimit(3), seed=0)
        with Profiler() as prof:
            res = ils.run(inst300)
        return prof, res

    def test_iteration_spans(self, profiled):
        prof, res = profiled
        iters = [s for s in prof.spans if s.name == "iteration"]
        assert len(iters) == res.iterations
        names = {s.name for s in prof.spans}
        assert {"ils", "perturbation", "acceptance", "local_search"} <= names

    def test_share_is_derived_metric_and_reproduces_claim(self, profiled):
        prof, res = profiled
        counter = res.metrics.counter("ils.local_search.modeled_seconds")
        assert res.local_search_seconds == counter.value
        assert res.local_search_share >= 0.90
        # the same claim is visible from the spans alone
        assert prof.span_share("local_search", of="ils") >= 0.90

    def test_ils_metrics_merged_into_process_registry(self, profiled):
        prof, res = profiled
        assert prof.metrics.counter("ils.iterations").value == res.iterations

    def test_result_works_without_profiler(self, inst100):
        ls = LocalSearch("gtx680-cuda", strategy="batch")
        ils = IteratedLocalSearch(ls, termination=IterationLimit(2), seed=0)
        res = ils.run(inst100)
        assert res.local_search_share >= 0.90
        assert res.perturbation_seconds > 0


class TestCliSmoke:
    def test_solve_profile_prints_tree_and_share(self, capsys):
        assert main(["solve", "--n", "300", "--seed", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "local_search" in out
        assert "[device]" in out
        share = float(
            out.split("local-search share of modeled time: ")[1].split("%")[0]
        )
        assert share >= 90.0

    def test_solve_trace_out_is_valid_chrome_json(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["solve", "--n", "300", "--seed", "2",
                     "--trace-out", str(path)]) == 0
        trace = json.loads(path.read_text())
        assert_valid_chrome_trace(trace)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in xs}
        assert len(pids) == 2  # host track + modeled device track
        assert any(e["name"] == "2opt-ordered" for e in xs)
        assert any(e["name"] == "local_search" for e in xs)

    def test_solve_json_payload(self, capsys):
        assert main(["solve", "--n", "120", "--json", "--profile"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n"] == 120
        assert payload["final_length"] <= payload["initial_length"]
        assert payload["modeled_seconds"] > 0
        assert payload["telemetry"]["local_search_share_modeled"] >= 0.9

    def test_profile_subcommand(self, capsys, tmp_path):
        path = tmp_path / "ils-trace.json"
        assert main(["profile", "--n", "150", "--iterations", "2",
                     "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "iteration" in out
        share = float(
            out.split("local-search share of modeled ILS time: ")[1].split("%")[0]
        )
        assert share >= 90.0
        assert_valid_chrome_trace(json.loads(path.read_text()))


class TestNoopOverhead:
    def test_noop_tracer_under_5_percent(self, inst300):
        """Instrumentation with the default no-op tracer costs <5 % wall.

        Measured as (spans the run would create) x (per-call no-op cost),
        against the instrumented run's own wall time — robust to machine
        noise, unlike back-to-back wall-clock comparisons.
        """
        solver = TwoOptSolver("gtx680-cuda", strategy="batch")
        solver.solve(inst300)  # warm-up (JIT-free, but caches/allocators)
        walls = []
        for _ in range(3):
            walls.append(solver.solve(inst300).search.wall_seconds)
        wall = min(walls)

        with Profiler() as prof:
            solver.solve(inst300)
        span_count = prof.tracer.span_count

        noop = NoopTracer()
        reps = 20_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with noop.span("scan", category="local_search"):
                pass
        per_span = (time.perf_counter() - t0) / reps

        overhead = span_count * per_span
        assert overhead < 0.05 * wall, (
            f"{span_count} no-op spans x {per_span * 1e9:.0f} ns "
            f"= {overhead * 1e6:.1f} us vs wall {wall * 1e6:.1f} us"
        )
