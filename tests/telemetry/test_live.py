"""Tests for the live observability primitives (bus, traces, SLOs)."""

import io
import json
import threading

import pytest

from repro.telemetry import MetricsRegistry, Tracer
from repro.telemetry.live import (
    EventBus,
    FlightRecorder,
    JobTelemetry,
    JsonlSink,
    PercentileSLO,
    RatioSLO,
    adopt_job_spans,
    evaluate_slos,
    parse_slo,
    read_flight,
    render_prometheus,
    write_prometheus,
)

pytestmark = pytest.mark.observe


class TestEventBus:
    def test_sequential_total_order(self):
        bus = EventBus()
        seen = []
        bus.attach(seen.append)
        for i in range(5):
            bus.publish("tick", i=i)
        assert [e["seq"] for e in seen] == [0, 1, 2, 3, 4]
        assert [e["i"] for e in seen] == [0, 1, 2, 3, 4]
        assert bus.published == 5

    def test_concurrent_publishers_one_total_order(self):
        """Worker threads hammering publish still yield unique, gapless
        seqs, and every sink observes the identical order."""
        bus = EventBus()
        sink_a, sink_b = [], []
        bus.attach(sink_a.append)
        bus.attach(sink_b.append)
        n_threads, per_thread = 8, 50

        def pound(tid):
            for i in range(per_thread):
                bus.publish("tick", tid=tid, i=i)

        threads = [threading.Thread(target=pound, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        seqs = [e["seq"] for e in sink_a]
        assert sorted(seqs) == list(range(total))
        assert seqs == sorted(seqs)  # delivered in order, not just stamped
        assert [e["seq"] for e in sink_b] == seqs
        # per-publisher order is preserved inside the total order
        for tid in range(n_threads):
            mine = [e["i"] for e in sink_a if e["tid"] == tid]
            assert mine == list(range(per_thread))

    def test_bounded_pending_drops_oldest(self):
        bus = EventBus(capacity=4)
        for i in range(10):
            bus.publish("tick", i=i)
        pending = bus.drain()
        assert [e["i"] for e in pending] == [6, 7, 8, 9]
        assert bus.dropped == 6
        assert bus.summary()["dropped"] == 6
        assert bus.drain() == []  # drain clears

    def test_broken_sink_is_counted_not_raised(self):
        bus = EventBus()
        good = []

        def bad(event):
            raise RuntimeError("boom")

        bus.attach(bad)
        bus.attach(good.append)
        bus.publish("tick")
        bus.publish("tock")
        assert bus.sink_errors == 2
        assert [e["kind"] for e in good] == ["tick", "tock"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventBus(capacity=0)


class TestJsonlSink:
    def test_one_json_object_per_line_in_order(self):
        stream = io.StringIO()
        bus = EventBus()
        bus.attach(JsonlSink(stream))
        bus.publish("a", x=1)
        bus.publish("b", y="two")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert (first["kind"], first["seq"], first["x"]) == ("a", 0, 1)
        assert (second["kind"], second["seq"], second["y"]) == ("b", 1, "two")


class TestJobTelemetry:
    def test_root_span_publishes_open_and_close(self):
        bus = EventBus()
        jt = JobTelemetry.create(job_id="j1", index=3, worker=1, bus=bus)
        assert jt.trace_id == "j1#3"
        with jt.tracer.span("solve"):
            with jt.tracer.span("scan"):  # depth 1: recorded, not published
                jt.tracer.advance_modeled(0.1)
        kinds = [e["kind"] for e in bus.drain()]
        assert kinds == ["span.open", "span.close"]
        assert len(jt.tracer.spans) == 2

    def test_span_event_depth_widens_the_stream(self):
        bus = EventBus()
        jt = JobTelemetry.create(job_id="j1", index=0, worker=0, bus=bus,
                                 span_event_depth=1)
        with jt.tracer.span("solve"):
            with jt.tracer.span("scan"):
                pass
        assert [e["kind"] for e in bus.drain()] == [
            "span.open", "span.open", "span.close", "span.close"]

    def test_close_event_carries_times_and_identity(self):
        bus = EventBus()
        jt = JobTelemetry.create(job_id="j9", index=2, worker=4, bus=bus)
        with jt.tracer.span("solve"):
            jt.tracer.advance_modeled(0.5)
        close = bus.drain()[-1]
        assert close["job"] == "j9"
        assert close["trace"] == "j9#2"
        assert close["worker"] == 4
        assert close["modeled_s"] == pytest.approx(0.5)


class TestAdoptJobSpans:
    def _job_with_device_work(self):
        jt = JobTelemetry.create(job_id="j1", index=0, worker=1)
        jt.tracer.device_event("kernel", 0.2, track="gtx680-cuda")
        jt.tracer.device_event("transfer", 0.1, track="pcie")
        with jt.tracer.span("host-side"):  # host span: never adopted
            pass
        return jt

    def test_spans_relaned_sequentially_from_base(self):
        jt = self._job_with_device_work()
        target = Tracer()
        adopted = adopt_job_spans(target, jt, lane="worker#1", base=5.0,
                                  flow_id=7)
        assert adopted == 2
        lane_spans = [s for s in target.spans if s.track == "worker#1"]
        assert [s.name for s in lane_spans] == ["kernel", "transfer"]
        first, second = lane_spans
        assert first.start_modeled == pytest.approx(5.0)
        assert first.end_modeled == pytest.approx(5.2)
        assert second.start_modeled == pytest.approx(5.2)
        assert second.end_modeled == pytest.approx(5.3)
        assert target.device_clocks["worker#1"] == pytest.approx(5.3)

    def test_identity_and_flow_attrs(self):
        jt = self._job_with_device_work()
        target = Tracer()
        adopt_job_spans(target, jt, lane="worker#1", base=0.0, flow_id=7)
        first, second = [s for s in target.spans if s.track == "worker#1"]
        assert first.attrs["job"] == "j1"
        assert first.attrs["trace"] == "j1#0"
        assert first.attrs["src_track"] == "gtx680-cuda"
        assert (first.attrs["flow"], first.attrs["flow_id"]) == ("step", 7)
        assert "flow" not in second.attrs  # only the first span links

    def test_overflow_counts_on_target_dropped(self):
        jt = JobTelemetry.create(job_id="j1", index=0, worker=0)
        for i in range(5):
            jt.tracer.device_event(f"k{i}", 0.1, track="dev")
        target = Tracer()
        adopted = adopt_job_spans(target, jt, lane="w", base=0.0, limit=2)
        assert adopted == 2
        assert target.dropped == 3

    def test_disabled_target_is_a_noop(self):
        from repro.telemetry import NoopTracer

        jt = self._job_with_device_work()
        assert adopt_job_spans(NoopTracer(), jt, lane="w", base=0.0) == 0


class TestFlightRecorder:
    def test_rings_are_bounded_per_worker(self):
        rec = FlightRecorder(per_worker=3)
        for i in range(10):
            rec({"seq": i, "kind": "tick", "worker": 0})
        assert [e["seq"] for e in rec.recent(0)] == [7, 8, 9]

    def test_dump_merges_worker_and_coordinator_rings(self, tmp_path):
        path = tmp_path / "run.flight.jsonl"
        rec = FlightRecorder(path=path)
        rec({"seq": 0, "kind": "batch.begin"})  # coordinator ring (-1)
        rec({"seq": 1, "kind": "job.started", "worker": 0})
        rec({"seq": 2, "kind": "job.started", "worker": 1})  # other worker
        out = rec.dump("crash", worker=0, job_id="j1")
        assert out == path
        assert rec.dumps == 1
        records = read_flight(path)
        assert len(records) == 1
        record = records[0]
        assert record["reason"] == "crash"
        assert record["worker"] == 0
        assert record["job"] == "j1"
        # worker 0's ring + the coordinator ring, merged in seq order;
        # worker 1's events stay out of worker 0's black box
        assert [e["seq"] for e in record["events"]] == [0, 1]

    def test_dump_without_path_is_noop(self):
        rec = FlightRecorder()
        rec({"seq": 0, "kind": "tick"})
        assert rec.dump("crash") is None
        assert rec.dumps == 0

    def test_read_flight_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "x.flight.jsonl"
        rec = FlightRecorder(path=path)
        rec({"seq": 0, "kind": "tick"})
        rec.dump("crash", worker=None)
        with path.open("a") as fh:
            fh.write('{"reason": "qu')  # process died mid-dump
        records = read_flight(path)
        assert len(records) == 1
        assert records[0]["reason"] == "crash"

    def test_read_flight_missing_file(self, tmp_path):
        assert read_flight(tmp_path / "nope.jsonl") == []


class TestSLOParsing:
    def test_percentile_round_trip(self):
        rule = parse_slo("p99:service.queue_wait<=0.5")
        assert isinstance(rule, PercentileSLO)
        assert rule.metric == "service.queue_wait"
        assert rule.stat == "p99"
        assert rule.threshold == 0.5
        assert rule.spec() == "p99:service.queue_wait<=0.5"

    def test_ratio_round_trip_with_sums(self):
        rule = parse_slo("ratio:a+b/c+d<=0.05")
        assert isinstance(rule, RatioSLO)
        assert rule.numerator == ("a", "b")
        assert rule.denominator == ("c", "d")
        assert rule.spec() == "ratio:a+b/c+d<=0.05"

    def test_ge_operator(self):
        rule = parse_slo("ratio:hits/hits+misses>=0.5")
        assert rule.op == ">="

    @pytest.mark.parametrize("bad", [
        "p99:service.queue_wait",      # no operator
        "p99:x<=abc",                  # bad threshold
        "p42:x<=1",                    # unknown stat
        "ratio:onlynum<=1",            # ratio without /
        "nocolon<=1",                  # missing stat:metric form
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)


class TestSLOEvaluation:
    def test_percentile_not_applicable_until_observed(self):
        reg = MetricsRegistry()
        rule = parse_slo("p99:wait<=0.5")
        status = rule.evaluate(reg)
        assert status.applicable is False
        assert status.ok is True  # not-applicable never breaches

    def test_percentile_breach(self):
        reg = MetricsRegistry()
        for v in (0.1, 0.2, 9.0):
            reg.histogram("wait").observe(v)
        assert parse_slo("p99:wait<=0.5").evaluate(reg).ok is False
        assert parse_slo("max:wait<=10").evaluate(reg).ok is True
        assert parse_slo("mean:wait<=5").evaluate(reg).ok is True

    def test_ratio_not_applicable_on_zero_denominator(self):
        reg = MetricsRegistry()
        status = parse_slo("ratio:err/total<=0.0").evaluate(reg)
        assert status.applicable is False
        assert status.ok is True

    def test_ratio_breach_and_pass(self):
        reg = MetricsRegistry()
        reg.counter("err").inc(1)
        reg.counter("total").inc(10)
        assert parse_slo("ratio:err/total<=0.05").evaluate(reg).ok is False
        assert parse_slo("ratio:err/total<=0.2").evaluate(reg).ok is True

    def test_evaluate_slos_preserves_rule_order(self):
        reg = MetricsRegistry()
        reg.counter("total").inc(1)
        rules = [parse_slo("ratio:err/total<=0.5", name="errors"),
                 parse_slo("p99:wait<=1", name="wait")]
        statuses = evaluate_slos(rules, reg)
        assert [s.name for s in statuses] == ["errors", "wait"]


class TestPrometheus:
    def test_render_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("service.jobs.ok").inc(3)
        reg.gauge("queue.depth").set(2)
        reg.histogram("service.queue_wait").observe(0.5)
        text = render_prometheus(reg)
        assert "# TYPE repro_service_jobs_ok_total counter" in text
        assert "repro_service_jobs_ok_total 3" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2" in text
        assert "# TYPE repro_service_queue_wait summary" in text
        assert 'repro_service_queue_wait{quantile="0.99"} 0.5' in text
        assert "repro_service_queue_wait_sum 0.5" in text
        assert "repro_service_queue_wait_count 1" in text

    def test_metric_names_sanitized_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.metric").inc()
        reg.counter("a-metric").inc()
        text = render_prometheus(reg)
        assert text.index("repro_a_metric_total") < text.index(
            "repro_b_metric_total")

    def test_write_is_atomic_and_replaces(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        path = tmp_path / "metrics.prom"
        write_prometheus(reg, path)
        reg.counter("x").inc()
        write_prometheus(reg, path)
        assert "repro_x_total 2" in path.read_text()
        assert not (tmp_path / "metrics.prom.tmp").exists()
