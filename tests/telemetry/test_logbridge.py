"""Tests for the structured-logging bridge (spans/faults through logging)."""

import io
import json
import logging

import pytest

from repro.telemetry import (
    JsonLogFormatter,
    SpanLogListener,
    Tracer,
    install_log_bridge,
    log_fault_event,
    uninstall_log_bridge,
)
from repro.telemetry.logbridge import (
    BENCH_LOGGER,
    FAULT_LOGGER,
    FIELDS_ATTR,
    SPAN_LOGGER,
)
from repro.telemetry.span import _span_listener  # noqa: F401 (import check)


@pytest.fixture()
def bridge_stream():
    """Install the bridge on a StringIO; always uninstall afterwards."""
    stream = io.StringIO()
    try:
        yield stream
    finally:
        uninstall_log_bridge()
        logging.getLogger("repro").setLevel(logging.NOTSET)


class TestInstall:
    def test_span_close_logged_at_info(self, bridge_stream):
        install_log_bridge("INFO", stream=bridge_stream)
        tracer = Tracer()
        with tracer.span("local_search", category="core"):
            tracer.advance_modeled(0.25)
        out = bridge_stream.getvalue()
        assert "span close local_search" in out
        assert "modeled=0.250000s" in out
        # opens are DEBUG — suppressed at INFO
        assert "span open" not in out

    def test_debug_level_shows_opens(self, bridge_stream):
        install_log_bridge("DEBUG", stream=bridge_stream)
        with Tracer().span("scan"):
            pass
        assert "span open scan" in bridge_stream.getvalue()

    def test_idempotent_reinstall_single_handler(self, bridge_stream):
        install_log_bridge("INFO", stream=bridge_stream)
        install_log_bridge("INFO", stream=bridge_stream)
        root = logging.getLogger("repro")
        stream_handlers = [h for h in root.handlers
                           if isinstance(h, logging.StreamHandler)
                           and not isinstance(h, logging.NullHandler)]
        assert len(stream_handlers) == 1
        with Tracer().span("once"):
            pass
        assert bridge_stream.getvalue().count("span close once") == 1

    def test_uninstall_silences_spans(self, bridge_stream):
        install_log_bridge("INFO", stream=bridge_stream)
        uninstall_log_bridge()
        with Tracer().span("quiet"):
            pass
        assert "quiet" not in bridge_stream.getvalue()

    def test_noop_tracer_never_notifies(self, bridge_stream):
        from repro.telemetry import get_tracer

        install_log_bridge("DEBUG", stream=bridge_stream)
        with get_tracer().span("invisible"):  # default NoopTracer
            pass
        assert bridge_stream.getvalue() == ""


class TestJsonFormatter:
    def test_fields_merged_into_payload(self):
        fmt = JsonLogFormatter()
        record = logging.LogRecord(
            SPAN_LOGGER, logging.INFO, __file__, 1, "span close %s",
            ("scan",), None,
        )
        setattr(record, FIELDS_ATTR, {"event": "span_close", "span": "scan",
                                      "wall_seconds": 0.5})
        payload = json.loads(fmt.format(record))
        assert payload["message"] == "span close scan"
        assert payload["level"] == "INFO"
        assert payload["logger"] == SPAN_LOGGER
        assert payload["event"] == "span_close"
        assert payload["wall_seconds"] == 0.5

    def test_json_mode_end_to_end(self, bridge_stream):
        install_log_bridge("INFO", json_output=True, stream=bridge_stream)
        tracer = Tracer()
        with tracer.span("solve", category="api"):
            pass
        lines = [json.loads(line)
                 for line in bridge_stream.getvalue().splitlines()]
        close = next(o for o in lines if o.get("event") == "span_close")
        assert close["span"] == "solve"
        assert close["category"] == "api"
        assert "modeled_seconds" in close


class TestFaultEvents:
    def test_fault_event_is_warning_with_fields(self, bridge_stream):
        install_log_bridge("WARNING", json_output=True, stream=bridge_stream)
        log_fault_event("gpusim.fault.injected", "gtx680-cuda#0", 1.0)
        payload = json.loads(bridge_stream.getvalue())
        assert payload["level"] == "WARNING"
        assert payload["logger"] == FAULT_LOGGER
        assert payload["event"] == "fault"
        assert payload["kind"] == "gpusim.fault.injected"
        assert payload["track"] == "gtx680-cuda#0"

    def test_warning_level_hides_span_closes(self, bridge_stream):
        install_log_bridge("WARNING", stream=bridge_stream)
        with Tracer().span("hidden"):
            pass
        log_fault_event("gpusim.fault.retries", "pool#1")
        out = bridge_stream.getvalue()
        assert "hidden" not in out
        assert "fault event" in out

    def test_faulted_solve_emits_fault_records(self, bridge_stream):
        from repro.core.solver import TwoOptSolver
        from repro.tsplib.generators import generate_instance

        install_log_bridge("WARNING", stream=bridge_stream)
        solver = TwoOptSolver(
            ["gtx680-cuda", "gtx680-cuda"], backend="multi-gpu",
            mode="simulate", strategy="best",
            faults="rate:transient=0.3,seed=4",
        )
        solver.solve(generate_instance(150, seed=1), max_scans=4)
        assert "fault event injected" in bridge_stream.getvalue()


class TestListenerUnit:
    def test_listener_uses_named_logger(self):
        logger = logging.getLogger("test.spanbridge")
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = Capture(level=logging.DEBUG)
        logger.addHandler(handler)
        logger.setLevel(logging.DEBUG)
        logger.propagate = False
        try:
            from repro.telemetry import set_span_listener

            previous = set_span_listener(SpanLogListener(logger))
            try:
                with Tracer().span("unit"):
                    pass
            finally:
                set_span_listener(previous)
        finally:
            logger.removeHandler(handler)
        events = [getattr(r, FIELDS_ATTR)["event"] for r in records]
        assert events == ["span_open", "span_close"]

    def test_bench_logger_name_reserved(self):
        # the bench module logs under the documented name
        import repro.telemetry.bench as bench

        assert bench._log.name == BENCH_LOGGER


@pytest.mark.observe
class TestEventLogSink:
    """Live bus events bridged through ``repro.telemetry.live`` logging."""

    def _bus_and_records(self, level=logging.INFO):
        from repro.telemetry.live import EventBus
        from repro.telemetry.logbridge import LIVE_LOGGER, attach_bus_logging

        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        logger = logging.getLogger(LIVE_LOGGER + ".test")
        logger.handlers = [Capture()]
        logger.setLevel(level)
        logger.propagate = False
        bus = EventBus()
        attach_bus_logging(bus, logger)
        return bus, records

    def test_events_logged_in_bus_order(self):
        bus, records = self._bus_and_records()
        bus.publish("job.admitted", job="a")
        bus.publish("job.started", job="a", worker=0)
        bus.publish("job.finished", job="a", worker=0)
        seqs = [getattr(r, FIELDS_ATTR)["seq"] for r in records]
        assert seqs == [0, 1, 2]
        assert [r.levelno for r in records] == [logging.INFO] * 3

    def test_alarm_kinds_log_at_warning(self):
        bus, records = self._bus_and_records(level=logging.WARNING)
        bus.publish("job.finished", job="a")         # INFO: filtered out
        bus.publish("slo.breach", slo="error-rate")  # WARNING: kept
        bus.publish("worker.crashed", worker=1)
        assert [getattr(r, FIELDS_ATTR)["kind"] for r in records] == [
            "slo.breach", "worker.crashed"]
        assert all(r.levelno == logging.WARNING for r in records)

    def test_json_formatter_round_trips_event_fields(self):
        bus, records = self._bus_and_records()
        bus.publish("job.finished", job="a", worker=2, status="ok")
        line = JsonLogFormatter().format(records[0])
        payload = json.loads(line)
        assert payload["kind"] == "job.finished"
        assert payload["job"] == "a"
        assert payload["worker"] == 2
        assert payload["status"] == "ok"
        assert payload["seq"] == 0
        assert payload["logger"].startswith("repro.telemetry.live")

    def test_full_bus_still_delivers_to_log_sink(self):
        """Pending-buffer eviction (pull-side drops) never loses log
        lines: sinks are push-side and see every published event."""
        from repro.telemetry.live import EventBus
        from repro.telemetry.logbridge import LIVE_LOGGER, attach_bus_logging

        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        logger = logging.getLogger(LIVE_LOGGER + ".full")
        logger.handlers = [Capture()]
        logger.setLevel(logging.INFO)
        logger.propagate = False
        bus = EventBus(capacity=2)
        attach_bus_logging(bus, logger)
        for i in range(10):
            bus.publish("tick", i=i)
        assert bus.dropped == 8          # pull-side accounting is honest
        assert len(records) == 10        # push-side stream is complete
        assert len(bus.drain()) == 2
