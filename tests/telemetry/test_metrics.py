"""Tests for counters, gauges, histograms, and the registry."""

import pytest

from repro.gpusim.stats import KernelStats
from repro.telemetry import (
    MetricsRegistry,
    NoopMetricsRegistry,
    get_metrics,
)


class TestCounter:
    def test_get_or_create_and_inc(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2.5)
        assert reg.counter("a").value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(5)
        reg.gauge("g").set(2)
        assert reg.gauge("g").value == 2.0


class TestHistogram:
    def test_summary_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 5
        assert s["sum"] == pytest.approx(15.0)
        assert s["min"] == 1.0 and s["max"] == 5.0
        assert s["mean"] == pytest.approx(3.0)
        assert s["p50"] == 3.0

    def test_percentiles_nearest_rank(self):
        h = MetricsRegistry().histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h").percentile(101)

    def test_empty_summary(self):
        assert MetricsRegistry().histogram("h").summary()["count"] == 0

    def test_bounded_retention_keeps_exact_aggregates(self):
        h = MetricsRegistry().histogram("h", max_samples=3)
        for v in [1.0, 2.0, 3.0, 100.0]:
            h.observe(v)
        assert h.count == 4
        assert h.max == 100.0
        assert h.total == pytest.approx(106.0)
        assert h.dropped == 1

    def test_summary_includes_p10(self):
        h = MetricsRegistry().histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["p10"] == 10.0
        assert s["p90"] == 90.0
        assert MetricsRegistry().histogram("x").summary()["p10"] == 0.0

    def test_reservoir_is_deterministic_per_name(self):
        def fill(name):
            h = MetricsRegistry().histogram(name, max_samples=16)
            for v in range(1000):
                h.observe(float(v))
            return h

        a, b = fill("same"), fill("same")
        assert a._samples == b._samples          # seeded from the name
        assert a.dropped == b.dropped == 1000 - 16
        assert fill("other")._samples != a._samples

    def test_reservoir_sample_is_representative_not_prefix(self):
        h = MetricsRegistry().histogram("stream", max_samples=64)
        for v in range(10_000):
            h.observe(float(v))
        # first-N retention would cap the sampled p90 at 63; the
        # reservoir keeps late observations reachable
        assert h.percentile(90) > 1000.0
        assert len(h._samples) == 64
        assert h.count == 10_000


class TestRegistry:
    def test_record_kernel_stats_prefixes_counters(self):
        reg = MetricsRegistry()
        reg.record_kernel_stats(KernelStats(flops=10, pair_checks=4,
                                            notes={"x": 1}))
        reg.record_kernel_stats(KernelStats(flops=5))
        assert reg.counter("kernel.flops").value == 15.0
        assert reg.counter("kernel.pair_checks").value == 4.0
        # notes (a dict) must not become a counter
        assert "kernel.notes" not in reg.counters

    def test_record_kernel_stats_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            MetricsRegistry().record_kernel_stats({"flops": 1})

    def test_merge_combines_all_instruments(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.gauge("g").set(7)
        b.histogram("h").observe(3.0)
        a.merge(b)
        assert a.counter("c").value == 3.0
        assert a.gauge("g").value == 7.0
        assert a.histogram("h").count == 1

    def test_merge_disjoint_names_keeps_both(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("only.a").inc(1)
        b.counter("only.b").inc(2)
        a.histogram("h.a").observe(1.0)
        b.histogram("h.b").observe(2.0)
        a.merge(b)
        assert a.counter("only.a").value == 1.0
        assert a.counter("only.b").value == 2.0
        assert set(a.histograms) == {"h.a", "h.b"}
        # the source registry is untouched
        assert "only.a" not in b.counters

    def test_merge_overlapping_histograms_preserves_aggregates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in [1.0, 2.0]:
            a.histogram("h", max_samples=2).observe(v)
        for v in [3.0, 4.0, 5.0]:
            b.histogram("h", max_samples=2).observe(v)
        a.merge(b)
        h = a.histogram("h")
        # exact aggregates survive even past both sample bounds
        assert h.count == 5
        assert h.total == pytest.approx(15.0)
        assert h.min == 1.0 and h.max == 5.0
        assert h.dropped == h.count - len(h._samples)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"] == {"c": 1.0}


class TestNoopRegistry:
    def test_default_is_noop(self):
        assert isinstance(get_metrics(), NoopMetricsRegistry)
        assert get_metrics().enabled is False

    def test_instruments_discard_but_read_zero(self):
        reg = NoopMetricsRegistry()
        reg.counter("c").inc(10)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        reg.record_kernel_stats(KernelStats(flops=3))
        reg.merge(MetricsRegistry())
        assert reg.counter("c").value == 0.0
        assert reg.snapshot()["counters"] == {}
