"""Tests for the Span/Tracer core: nesting, channels, bounds, no-op."""

import pytest

from repro.telemetry import (
    NoopTracer,
    Tracer,
    get_tracer,
    set_tracer,
)


class TestSpanBasics:
    def test_records_wall_time(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        assert len(tracer.spans) == 1
        s = tracer.spans[0]
        assert s.name == "work"
        assert s.wall_seconds >= 0.0
        assert s.end_wall >= s.start_wall

    def test_attrs_via_kwargs_and_set_attr(self):
        tracer = Tracer()
        with tracer.span("work", category="test", n=42) as sp:
            sp.set_attr("result", "ok")
        s = tracer.spans[0]
        assert s.category == "test"
        assert s.attrs == {"n": 42, "result": "ok"}

    def test_nesting_assigns_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == 1
        # children close (and record) before parents
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert tracer.roots()[0].name == "outer"

    def test_modeled_channel_nests(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                inner.add_modeled(0.5)
            tracer.advance_modeled(0.25)
        assert tracer.spans[0].modeled_seconds == pytest.approx(0.5)   # inner
        assert tracer.spans[1].modeled_seconds == pytest.approx(0.75)  # outer
        assert outer.modeled_seconds == pytest.approx(0.75)

    def test_modeled_outside_span_not_attributed(self):
        tracer = Tracer()
        tracer.advance_modeled(1.0)
        with tracer.span("later"):
            pass
        assert tracer.spans[0].modeled_seconds == 0.0
        assert tracer.modeled_clock == pytest.approx(1.0)


class TestDeviceEvents:
    def test_device_event_on_device_track(self):
        tracer = Tracer()
        with tracer.span("host") as host:
            tracer.device_event("kernel", 1e-3, device="sim")
        dev = [s for s in tracer.spans if s.track == "device"]
        assert len(dev) == 1
        assert dev[0].parent_id == host.span_id
        assert dev[0].modeled_seconds == pytest.approx(1e-3)
        assert dev[0].wall_seconds == 0.0

    def test_device_clock_is_cumulative_and_separate(self):
        tracer = Tracer()
        tracer.device_event("k", 2.0)
        tracer.device_event("k", 3.0)
        assert tracer.device_clock == pytest.approx(5.0)
        assert tracer.modeled_clock == 0.0
        second = tracer.spans[1]
        assert second.start_modeled == pytest.approx(2.0)
        assert second.end_modeled == pytest.approx(5.0)


class TestBounds:
    def test_max_spans_drops_beyond_bound(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        assert tracer.span_count == 5

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestDefaultTracer:
    def test_default_is_noop(self):
        assert isinstance(get_tracer(), NoopTracer)
        assert get_tracer().enabled is False

    def test_noop_span_is_inert_singleton(self):
        noop = NoopTracer()
        a = noop.span("x", n=1)
        b = noop.span("y")
        assert a is b
        with a as sp:
            sp.set_attr("k", "v")
            sp.add_modeled(1.0)
        noop.advance_modeled(2.0)
        noop.device_event("k", 1.0)

    def test_set_tracer_swaps_and_restores(self):
        real = Tracer()
        prev = set_tracer(real)
        try:
            assert get_tracer() is real
            with get_tracer().span("visible"):
                pass
            assert real.spans[0].name == "visible"
        finally:
            set_tracer(prev)
        assert isinstance(get_tracer(), NoopTracer)

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("a") as a:
            assert tracer.current_span() is a
        assert tracer.current_span() is None
