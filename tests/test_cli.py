"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        p = build_parser()
        for cmd in ("solve", "table1", "table2", "fig9", "fig10", "fig11",
                    "ablate", "devices"):
            args = p.parse_args([cmd] if cmd != "fig11" else [cmd, "--n", "100"])
            assert callable(args.func)


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "GeForce GTX 680" in out
        assert "Xeon" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "fnl4461" in capsys.readouterr().out

    def test_solve_synthetic(self, capsys):
        assert main(["solve", "--n", "120", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "final length" in out
        assert "modeled time" in out

    def test_solve_paper_instance_truncated(self, capsys):
        assert main([
            "solve", "--paper-instance", "pr2392", "--max-n", "150",
        ]) == 0
        assert "pr2392@150" in capsys.readouterr().out

    def test_solve_from_file(self, tmp_path, capsys):
        from repro.tsplib.generators import generate_instance
        from repro.tsplib.writer import dump_tsplib

        path = tmp_path / "t.tsp"
        dump_tsplib(generate_instance(80, seed=1, name="t"), path)
        assert main(["solve", "--file", str(path)]) == 0
        assert "n=80" in capsys.readouterr().out

    def test_solve_device_pool(self, capsys):
        import json

        assert main([
            "solve", "--n", "150", "--seed", "2",
            "--devices", "gtx680-cuda,hd7970ghz-opencl", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "multi-gpu"
        assert payload["device"] == "gtx680-cuda + hd7970ghz-opencl"
        assert payload["final_length"] < payload["initial_length"]

    def test_table2_smoke(self, capsys):
        assert main(["table2", "--max-solve-n", "150", "--max-table-n", "300"]) == 0
        assert "berlin52" in capsys.readouterr().out

    def test_fig10_custom_baseline(self, capsys):
        assert main(["fig10", "--baseline", "i7-3960x-opencl"]) == 0
        assert "i7-3960X" in capsys.readouterr().out

    def test_fig11_small(self, capsys):
        assert main(["fig11", "--n", "120", "--iterations", "2"]) == 0
        assert "convergence" in capsys.readouterr().out.lower()


class TestNewCommands:
    def test_extensions_smoke(self, capsys):
        assert main([
            "extensions", "--multigpu-n", "20000", "--pruned-n", "200",
            "--ihc-n", "150", "--ihc-budget", "0.003", "--smart-n", "400",
        ]) == 0
        out = capsys.readouterr().out
        assert "multi-GPU" in out
        assert "pruning" in out
        assert "IHC" in out
        assert "caveat" in out
        assert "breakdown" in out

    def test_report_command_writes_file(self, tmp_path, monkeypatch, capsys):
        """The report command is wired to write_report; patch the heavy
        generation so the CLI path itself is covered."""
        import repro.experiments.report as report_mod

        calls = {}

        def fake_write(path, cfg):
            calls["path"] = path
            calls["cfg"] = cfg
            with open(path, "w") as fh:
                fh.write("# fake report\n")
            return "# fake report\n"

        monkeypatch.setattr(report_mod, "write_report", fake_write)
        out_path = tmp_path / "r.md"
        assert main(["report", "--output", str(out_path),
                     "--max-solve-n", "100", "--fig11-n", "120"]) == 0
        assert calls["path"] == str(out_path)
        assert calls["cfg"].max_solve_n == 100
        assert out_path.read_text().startswith("# fake")

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "table1"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "fnl4461" in proc.stdout


class TestSolveJson:
    def test_json_output_is_machine_readable(self, capsys):
        import json

        assert main(["solve", "--n", "100", "--seed", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for key in ("instance", "n", "device", "strategy", "initial_length",
                    "final_length", "moves_applied", "scans", "launches",
                    "modeled_seconds", "wall_seconds"):
            assert key in payload
        assert payload["n"] == 100
        assert payload["final_length"] <= payload["initial_length"]

    def test_json_without_profile_has_no_telemetry_key(self, capsys):
        import json

        assert main(["solve", "--n", "80", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "telemetry" not in payload


class TestProfileCommand:
    def test_registered_in_parser(self):
        args = build_parser().parse_args(["profile", "--n", "50"])
        assert callable(args.func)

    def test_profile_json(self, capsys):
        import json

        assert main(["profile", "--n", "120", "--iterations", "2",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["iterations"] == 2
        assert payload["local_search_share"] >= 0.9
        assert payload["span_count"] > 0
        assert "ils.iterations" in payload["metrics"]["counters"]
