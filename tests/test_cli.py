"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        p = build_parser()
        extra_args = {"fig11": ["--n", "100"], "batch": ["jobs.jsonl"]}
        for cmd in ("solve", "table1", "table2", "fig9", "fig10", "fig11",
                    "ablate", "devices", "bench", "batch", "dashboard"):
            args = p.parse_args([cmd] + extra_args.get(cmd, []))
            assert callable(args.func)


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "GeForce GTX 680" in out
        assert "Xeon" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "fnl4461" in capsys.readouterr().out

    def test_solve_synthetic(self, capsys):
        assert main(["solve", "--n", "120", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "final length" in out
        assert "modeled time" in out

    def test_solve_paper_instance_truncated(self, capsys):
        assert main([
            "solve", "--paper-instance", "pr2392", "--max-n", "150",
        ]) == 0
        assert "pr2392@150" in capsys.readouterr().out

    def test_solve_from_file(self, tmp_path, capsys):
        from repro.tsplib.generators import generate_instance
        from repro.tsplib.writer import dump_tsplib

        path = tmp_path / "t.tsp"
        dump_tsplib(generate_instance(80, seed=1, name="t"), path)
        assert main(["solve", "--file", str(path)]) == 0
        assert "n=80" in capsys.readouterr().out

    def test_solve_device_pool(self, capsys):
        import json

        assert main([
            "solve", "--n", "150", "--seed", "2",
            "--devices", "gtx680-cuda,hd7970ghz-opencl", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "multi-gpu"
        assert payload["device"] == "gtx680-cuda + hd7970ghz-opencl"
        assert payload["final_length"] < payload["initial_length"]

    def test_solve_host_engine_subq(self, capsys):
        import json

        assert main([
            "solve", "--n", "150", "--seed", "4",
            "--host-engine", "subq", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["host_engine"] == "subq"
        assert payload["strategy"] == "best"
        assert payload["reached_minimum"] is True

    def test_solve_host_engine_parity(self, capsys):
        import json

        assert main([
            "solve", "--n", "150", "--seed", "4",
            "--strategy", "best", "--json",
        ]) == 0
        ref = json.loads(capsys.readouterr().out)
        assert main([
            "solve", "--n", "150", "--seed", "4",
            "--host-engine", "subq", "--json",
        ]) == 0
        sub = json.loads(capsys.readouterr().out)
        assert sub["final_length"] == ref["final_length"]

    def test_solve_rejects_subq_with_batch(self, capsys):
        assert main([
            "solve", "--n", "100", "--host-engine", "subq",
            "--strategy", "batch",
        ]) != 0

    def test_table2_smoke(self, capsys):
        assert main(["table2", "--max-solve-n", "150", "--max-table-n", "300"]) == 0
        assert "berlin52" in capsys.readouterr().out

    def test_fig10_custom_baseline(self, capsys):
        assert main(["fig10", "--baseline", "i7-3960x-opencl"]) == 0
        assert "i7-3960X" in capsys.readouterr().out

    def test_fig11_small(self, capsys):
        assert main(["fig11", "--n", "120", "--iterations", "2"]) == 0
        assert "convergence" in capsys.readouterr().out.lower()


class TestNewCommands:
    def test_extensions_smoke(self, capsys):
        assert main([
            "extensions", "--multigpu-n", "20000", "--pruned-n", "200",
            "--ihc-n", "150", "--ihc-budget", "0.003", "--smart-n", "400",
        ]) == 0
        out = capsys.readouterr().out
        assert "multi-GPU" in out
        assert "pruning" in out
        assert "IHC" in out
        assert "caveat" in out
        assert "breakdown" in out

    def test_report_command_writes_file(self, tmp_path, monkeypatch, capsys):
        """The report command is wired to write_report; patch the heavy
        generation so the CLI path itself is covered."""
        import repro.experiments.report as report_mod

        calls = {}

        def fake_write(path, cfg):
            calls["path"] = path
            calls["cfg"] = cfg
            with open(path, "w") as fh:
                fh.write("# fake report\n")
            return "# fake report\n"

        monkeypatch.setattr(report_mod, "write_report", fake_write)
        out_path = tmp_path / "r.md"
        assert main(["report", "--output", str(out_path),
                     "--max-solve-n", "100", "--fig11-n", "120"]) == 0
        assert calls["path"] == str(out_path)
        assert calls["cfg"].max_solve_n == 100
        assert out_path.read_text().startswith("# fake")

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "table1"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "fnl4461" in proc.stdout


class TestLogFlags:
    def test_log_level_emits_span_records_on_stderr(self, capsys):
        from repro.telemetry.logbridge import uninstall_log_bridge

        try:
            assert main(["--log-level", "INFO", "solve", "--n", "80",
                         "--profile"]) == 0
            assert "span close solve" in capsys.readouterr().err
        finally:
            uninstall_log_bridge()

    def test_log_json_emits_json_lines(self, capsys):
        import json
        import logging

        from repro.telemetry.logbridge import uninstall_log_bridge

        try:
            assert main(["--log-json", "solve", "--n", "80",
                         "--profile"]) == 0
            err_lines = capsys.readouterr().err.splitlines()
            closes = [json.loads(line) for line in err_lines
                      if '"span_close"' in line]
            assert closes and closes[-1]["span"] == "solve"
        finally:
            uninstall_log_bridge()
            logging.getLogger("repro").setLevel(logging.NOTSET)

    def test_no_flag_no_bridge_no_stderr_noise(self, capsys):
        assert main(["solve", "--n", "80", "--profile"]) == 0
        assert "span close" not in capsys.readouterr().err


class TestSolveModeFlag:
    def test_simulate_mode_defaults_to_best_strategy(self, capsys):
        import json

        assert main(["solve", "--n", "100", "--seed", "2", "--mode",
                     "simulate", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategy"] == "best"

    def test_simulate_trace_carries_roofline_samples(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        assert main(["solve", "--n", "100", "--seed", "2", "--mode",
                     "simulate", "--trace-out", str(trace_path)]) == 0
        trace = json.loads(trace_path.read_text())
        launches = [e for e in trace["traceEvents"]
                    if e.get("ph") == "X"
                    and "attained_gflops" in e.get("args", {})]
        assert launches

    def test_fast_mode_trace_has_no_roofline_samples(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        assert main(["solve", "--n", "100", "--seed", "2",
                     "--trace-out", str(trace_path)]) == 0
        trace = json.loads(trace_path.read_text())
        assert not any("attained_gflops" in e.get("args", {})
                       for e in trace["traceEvents"])


class TestDashboardCommand:
    def test_dashboard_html_and_ascii(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--scenario", "seq-berlin52",
                     "--label", "base"]) == 0
        capsys.readouterr()
        out_path = tmp_path / "dash.html"
        assert main(["dashboard", "--out", str(out_path)]) == 0
        html = out_path.read_text()
        assert "Metric trajectories" in html
        assert "seq-berlin52" in html
        capsys.readouterr()
        assert main(["dashboard", "--ascii"]) == 0
        out = capsys.readouterr().out
        assert "seq-berlin52" in out

    def test_dashboard_with_trace_and_against(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--scenario", "seq-berlin52",
                     "--label", "base"]) == 0
        trace_path = tmp_path / "trace.json"
        assert main(["solve", "--n", "100", "--mode", "simulate",
                     "--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["dashboard", "--trace", str(trace_path),
                     "--against", "BENCH_base.json", "--ascii"]) == 0
        out = capsys.readouterr().out
        assert "Recorded roofline" in out
        assert "bench gate" in out

    def test_dashboard_empty_ledger_is_diagnostic(self, tmp_path, capsys,
                                                  monkeypatch):
        # an empty observatory is a one-line diagnostic + exit 4, not a
        # blank dashboard
        monkeypatch.chdir(tmp_path)
        assert main(["dashboard", "--ascii"]) == 4
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert len(err.strip().splitlines()) == 1

    def test_dashboard_ledger_with_no_runs(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        ledger = tmp_path / "benchmarks" / "ledger.jsonl"
        ledger.parent.mkdir()
        ledger.write_text("")
        assert main(["dashboard", "--ascii"]) == 4
        assert "contains no runs" in capsys.readouterr().err

    def test_dashboard_flight_panel_without_ledger(self, tmp_path, capsys,
                                                   monkeypatch):
        # a flight sidecar alone is chartable (crash forensics), so no
        # exit-4 diagnostic even with an empty observatory
        import json as _json

        monkeypatch.chdir(tmp_path)
        flight = tmp_path / "run.jsonl.flight.jsonl"
        flight.write_text(_json.dumps({
            "reason": "crash", "worker": 0, "job": "cx-1",
            "events": [{"seq": 3, "kind": "worker.crashed", "worker": 0,
                        "job_id": "cx-1"}],
        }) + "\n")
        assert main(["dashboard", "--ascii", "--flight", str(flight)]) == 0
        out = capsys.readouterr().out
        assert "Last flight" in out
        assert "worker.crashed" in out

    def test_dashboard_against_needs_ledger_run(self, tmp_path, capsys,
                                                monkeypatch):
        # --against with an empty ledger cannot compare, even if a trace
        # would otherwise render
        monkeypatch.chdir(tmp_path)
        trace_path = tmp_path / "trace.json"
        assert main(["solve", "--n", "80", "--trace-out",
                     str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["dashboard", "--ascii", "--trace", str(trace_path),
                     "--against", "whatever.json"]) == 4
        assert "--against needs a ledger run" in capsys.readouterr().err


class TestSolveJson:
    def test_json_output_is_machine_readable(self, capsys):
        import json

        assert main(["solve", "--n", "100", "--seed", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for key in ("instance", "n", "device", "strategy", "initial_length",
                    "final_length", "moves_applied", "scans", "launches",
                    "modeled_seconds", "wall_seconds"):
            assert key in payload
        assert payload["n"] == 100
        assert payload["final_length"] <= payload["initial_length"]

    def test_json_without_profile_has_no_telemetry_key(self, capsys):
        import json

        assert main(["solve", "--n", "80", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "telemetry" not in payload


class TestErrorHandling:
    """Expected failures exit 2 with one line on stderr (satellite 1)."""

    def test_bad_device_key(self, capsys):
        assert main(["solve", "--n", "50", "--device", "gtx680cuda"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1
        assert "did you mean 'gtx680-cuda'" in err

    def test_malformed_tsplib_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.tsp"
        bad.write_bytes(b"\x80\x81\xff\xfe not text")
        assert main(["solve", "--file", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not UTF-8" in err

    def test_missing_tsplib_file(self, capsys):
        assert main(["solve", "--file", "/nonexistent/x.tsp"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, monkeypatch):
        """A KeyboardInterrupt in any handler maps to exit code 130."""
        import repro.cli as cli_mod

        real = cli_mod.build_parser

        def patched():
            p = real()
            sub = p._subparsers._group_actions[0]
            for sp in sub.choices.values():
                sp.set_defaults(func=lambda a: (_ for _ in ()).throw(
                    KeyboardInterrupt()))
            return p

        monkeypatch.setattr(cli_mod, "build_parser", patched)
        assert cli_mod.main(["devices"]) == 130


class TestFaultFlags:
    def test_inject_faults_single_device_pool(self, capsys):
        import json

        assert main([
            "solve", "--n", "150", "--seed", "1", "--json",
            "--inject-faults", "rate:transient=0.3,seed=4", "--retries", "4",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "multi-gpu"   # pool of one
        assert payload["strategy"] == "best"       # forced by fault injection
        total = sum(c["faults_injected"] for c in payload["faults"])
        assert total > 0

    def test_bad_fault_spec_exits_2(self, capsys):
        assert main(["solve", "--n", "50",
                     "--inject-faults", "meteor:device=0"]) == 2
        assert "fault" in capsys.readouterr().err

    def test_exhausted_retries_exit_2(self, capsys):
        assert main([
            "solve", "--n", "220", "--devices", "gtx680-cuda,gtx680-cuda",
            "--inject-faults", "corruption:device=0,count=9", "--retries", "2",
        ]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_fault_recovery_command(self, capsys):
        assert main(["fault-recovery", "--n", "300"]) == 0
        out = capsys.readouterr().out
        assert "Fault recovery" in out
        assert "bit-identical" in out


class TestCheckpointFlags:
    def test_solve_checkpoint_then_resume(self, tmp_path, capsys):
        import json

        ck = tmp_path / "ck.json"
        base = ["solve", "--n", "150", "--seed", "6", "--strategy", "best",
                "--json"]
        assert main(base) == 0
        full = json.loads(capsys.readouterr().out)

        assert main(base + ["--checkpoint", str(ck),
                            "--checkpoint-every", "2"]) == 0
        capsys.readouterr()
        assert ck.exists()
        assert main(base + ["--resume", str(ck)]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["final_length"] == full["final_length"]
        assert resumed["modeled_seconds"] == pytest.approx(
            full["modeled_seconds"])

    def test_profile_checkpoint_then_resume(self, tmp_path, capsys):
        import json

        ck = tmp_path / "ils.json"
        assert main(["profile", "--n", "100", "--iterations", "2",
                     "--checkpoint", str(ck), "--json"]) == 0
        capsys.readouterr()
        assert main(["profile", "--n", "100", "--iterations", "5",
                     "--resume", str(ck), "--json"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert main(["profile", "--n", "100", "--iterations", "5",
                     "--json"]) == 0
        full = json.loads(capsys.readouterr().out)
        assert resumed["iterations"] == 5
        assert resumed["best_length"] == full["best_length"]
        assert resumed["modeled_seconds"] == pytest.approx(
            full["modeled_seconds"])

    def test_corrupt_checkpoint_exits_2(self, tmp_path, capsys):
        ck = tmp_path / "ck.json"
        ck.write_text("{broken")
        assert main(["solve", "--n", "100", "--strategy", "best",
                     "--resume", str(ck)]) == 2
        assert "checkpoint" in capsys.readouterr().err.lower()

    def test_resume_wrong_seed_exits_2(self, tmp_path, capsys):
        # same n, different seed: the coordinate digest must catch it
        # before any checkpointed state is restored
        ck = tmp_path / "ck.json"
        assert main(["solve", "--n", "150", "--seed", "6", "--strategy",
                     "best", "--checkpoint", str(ck),
                     "--checkpoint-every", "2"]) == 0
        capsys.readouterr()
        assert main(["solve", "--n", "150", "--seed", "7", "--strategy",
                     "best", "--resume", str(ck)]) == 2
        assert "digest" in capsys.readouterr().err.lower()

    def test_resume_wrong_instance_size_exits_2(self, tmp_path, capsys):
        ck = tmp_path / "ck.json"
        assert main(["solve", "--n", "150", "--seed", "6", "--strategy",
                     "best", "--checkpoint", str(ck),
                     "--checkpoint-every", "2"]) == 0
        capsys.readouterr()
        assert main(["solve", "--n", "140", "--seed", "6", "--strategy",
                     "best", "--resume", str(ck)]) == 2
        assert "checkpoint" in capsys.readouterr().err.lower()


class TestProfileCommand:
    def test_registered_in_parser(self):
        args = build_parser().parse_args(["profile", "--n", "50"])
        assert callable(args.func)

    def test_profile_json(self, capsys):
        import json

        assert main(["profile", "--n", "120", "--iterations", "2",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["iterations"] == 2
        assert payload["local_search_share"] >= 0.9
        assert payload["span_count"] > 0
        assert "ils.iterations" in payload["metrics"]["counters"]
