"""Meta-test: every public item in the library carries a docstring.

Deliverable (e) of the reproduction: doc comments on every public item.
This gate walks all ``repro`` modules and fails on undocumented public
modules, classes, functions, and methods.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_METHOD_NAMES = {
    # dunder/boilerplate that inherits its contract
    "__init__", "__repr__", "__str__", "__eq__", "__hash__", "__len__",
    "__iter__", "__post_init__", "__call__", "__float__", "__enter__",
    "__exit__",
}


def walk_modules():
    mods = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        mods.append(importlib.import_module(info.name))
    return mods


ALL_MODULES = walk_modules()


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_documented(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-exports are documented at their definition site
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    missing = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for mname, meth in vars(obj).items():
                if mname.startswith("_") and mname not in ("__init__",):
                    continue
                if mname in SKIP_METHOD_NAMES:
                    continue
                if inspect.isfunction(meth) and not (
                    meth.__doc__ and meth.__doc__.strip()
                ):
                    # properties and trivial accessors may inherit context
                    # from the class docstring; only flag real methods with
                    # bodies longer than a couple of statements
                    try:
                        lines = inspect.getsource(meth).splitlines()
                    except OSError:
                        lines = []
                    if len(lines) > 4:
                        missing.append(f"{module.__name__}.{name}.{mname}")
    assert not missing, f"undocumented public items: {missing}"
