"""End-to-end checks of the paper's headline quantitative claims.

These tests pin the *shape* of the reproduction: who wins, by roughly
what factor, and where the crossovers fall — the contract DESIGN.md's
substitution argument rests on.
"""

import numpy as np
import pytest

from repro.core.local_search import LocalSearch
from repro.tsplib.generators import generate_instance


class TestAbstractClaims:
    def test_kernel_speedup_5_to_45x_vs_6core(self):
        """Abstract: "the time needed to perform a simple local search
        operation can be decreased approximately 5 to 45 times compared
        to a corresponding parallel CPU code ... using 6 cores"."""
        gpu = LocalSearch("gtx680-cuda", include_transfers=False)
        cpu = LocalSearch("i7-3960x-opencl", backend="cpu-parallel",
                          include_transfers=False)
        ratios = {
            n: cpu.scan_seconds(n) / gpu.scan_seconds(n)
            for n in (200, 500, 2000, 10_000, 50_000)
        }
        assert max(ratios.values()) <= 55
        assert 38 <= max(ratios.values())
        assert min(ratios.values()) >= 2
        # speedup grows with problem size
        vals = list(ratios.values())
        assert vals == sorted(vals)

    def test_shared_memory_capacity_claims(self):
        """§IV: 48 kB holds 6144 cities; the tiled subproblem ranges are
        capped at 3072 points."""
        from repro.core.tiling import TileSchedule
        from repro.core.two_opt_gpu import TwoOptKernelOrdered
        from repro.gpusim.device import get_device

        dev = get_device("gtx680-cuda")
        assert TwoOptKernelOrdered().max_cities(dev) == 6144
        sched = TileSchedule.for_device(50_000, dev)
        assert sched.range_size <= 3072

    def test_pr2392_iteration_count(self):
        """§IV worked example: 100 grid-stride iterations for pr2392 on
        a 28x1024 launch."""
        from repro.core.pair_indexing import iterations_per_thread

        assert iterations_per_thread(2392, 28 * 1024) == 100


class TestConvergenceClaims:
    def test_ils_convergence_speedup_grows_with_size(self):
        """§V: "the GPU algorithm gains more strength with the growth of
        instance size" — and no substantial speedup for n < 200."""
        from repro.ils.ils import IteratedLocalSearch
        from repro.ils.termination import IterationLimit

        speedups = {}
        for n in (100, 800):
            inst = generate_instance(n, seed=4, distribution="geo")
            results = {}
            for device, backend in (("gtx680-cuda", "gpu"),
                                    ("i7-3960x-opencl", "cpu-parallel")):
                ls = LocalSearch(device, backend=backend, strategy="batch")
                ils = IteratedLocalSearch(ls, termination=IterationLimit(2), seed=0)
                results[device] = ils.run(inst)
            speedups[n] = (
                results["i7-3960x-opencl"].modeled_seconds
                / results["gtx680-cuda"].modeled_seconds
            )
        assert speedups[800] > speedups[100]
        assert speedups[100] < 8  # little gain on small problems

    def test_solution_quality_2opt_improvement_band(self):
        """2-opt from greedy typically removes ~10-15% of tour length
        (consistent with the paper's Table II initial vs optimized)."""
        improvements = []
        for seed in range(3):
            inst = generate_instance(400, seed=seed)
            from repro.core.solver import TwoOptSolver

            res = TwoOptSolver("gtx680-cuda", strategy="batch").solve(inst)
            improvements.append(res.improvement_percent)
        assert all(5 <= imp <= 25 for imp in improvements)


class TestTransferClaims:
    def test_transfer_share_shrinks(self):
        """§V: data-transfer proportion decreases with problem size."""
        ls = LocalSearch("gtx680-cuda")
        shares = []
        for n in (100, 1000, 10_000):
            total = ls.scan_seconds(n)
            xfer = ls._transfer_seconds(n)
            shares.append(xfer / (xfer + total))
        assert shares[0] > shares[-1]
