"""End-to-end integration: the full paper pipeline on one instance.

Synthesize an instance → save/load through TSPLIB files → construct MF
tour → instrumented GPU 2-opt to a local minimum → certify → serialize →
render — every subsystem in one flow, exactly as a downstream user
would chain them.
"""

import json

import numpy as np
import pytest

from repro import TwoOptSolver, synthesize_paper_instance
from repro.gpusim import LaunchConfig, TraceCollector
from repro.tour import tour_to_svg, verify_solution
from repro.tsplib.parser import load_tsplib, parse_tour_file
from repro.tsplib.writer import dump_tsplib, dumps_tour
from repro.utils.serialize import dumps_result, to_jsonable


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("pipeline")
        inst = synthesize_paper_instance("kroE100")
        tsp_path = tmp / "kroE100.tsp"
        dump_tsplib(inst, tsp_path)
        reloaded = load_tsplib(tsp_path)

        trace = TraceCollector()
        solver = TwoOptSolver("gtx680-cuda", mode="simulate",
                              launch=LaunchConfig(4, 64))
        solver.local_search.trace = trace
        result = solver.solve(reloaded, initial="greedy")

        tour_path = tmp / "kroE100.tour"
        tour_path.write_text(dumps_tour(result.tour.order, name="kroE100"))
        return {
            "tmp": tmp, "instance": reloaded, "result": result,
            "trace": trace, "tour_path": tour_path,
        }

    def test_instance_roundtrip_preserved_distances(self, pipeline):
        inst = pipeline["instance"]
        orig = synthesize_paper_instance("kroE100")
        t = np.arange(100)
        assert inst.tour_length(t) == orig.tour_length(t)

    def test_optimization_reached_certified_minimum(self, pipeline):
        report = verify_solution(
            pipeline["instance"], pipeline["result"].tour.order,
            expected_length=pipeline["result"].final_length,
        )
        assert report.ok
        assert report.is_two_opt_minimum

    def test_tour_file_roundtrip(self, pipeline):
        saved = parse_tour_file(pipeline["tour_path"].read_text())
        assert np.array_equal(saved, pipeline["result"].tour.order)

    def test_trace_recorded_every_launch(self, pipeline):
        res = pipeline["result"]
        # one instrumented launch per scan (n=100 < 6144 -> no tiling)
        assert pipeline["trace"].launch_count == res.search.scans
        checks = sum(r.pair_checks for r in pipeline["trace"].records)
        assert checks == res.search.scans * (100 * 99 // 2)

    def test_result_serializes_to_json(self, pipeline):
        text = dumps_result(pipeline["result"].search)
        data = json.loads(text)
        assert data["final_length"] == pipeline["result"].final_length
        assert isinstance(data["order"], list)

    def test_svg_renders(self, pipeline):
        svg = tour_to_svg(
            pipeline["instance"].coords, pipeline["result"].tour.order
        )
        assert svg.startswith("<svg")

    def test_modeled_time_consistent_with_trace(self, pipeline):
        res = pipeline["result"].search
        trace_time = pipeline["trace"].total_seconds
        # modeled total = launches' kernel time + transfers + host applies
        assert res.modeled_seconds >= trace_time * 0.9


class TestSerializeUtility:
    def test_numpy_types(self):
        out = to_jsonable({"a": np.int64(3), "b": np.float32(1.5),
                           "c": np.arange(3), "d": np.bool_(True)})
        assert out == {"a": 3, "b": 1.5, "c": [0, 1, 2], "d": True}

    def test_nested_dataclass(self):
        from repro.gpusim.stats import KernelStats

        out = to_jsonable(KernelStats(flops=5, notes={"x": np.int32(1)}))
        assert out["flops"] == 5
        assert out["notes"] == {"x": 1}

    def test_unknown_objects_stringified(self):
        class Weird:
            __slots__ = ()

        assert isinstance(to_jsonable(Weird()), str)

    def test_depth_guard(self):
        a = []
        a.append(a)
        with pytest.raises(ValueError):
            to_jsonable(a)
