"""Tests for the top-level public API surface."""

import numpy as np

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_end_to_end_via_public_names_only(self):
        inst = repro.generate_instance(150, seed=0)
        solver = repro.TwoOptSolver("gtx680-cuda")
        result = solver.solve(inst)
        assert result.final_length <= result.initial_length
        assert isinstance(result.tour, repro.Tour)

    def test_device_catalog_exposed(self):
        assert "gtx680-cuda" in repro.DEVICES
        assert repro.get_device("gtx680-cuda").name == "GeForce GTX 680"
        assert set(repro.list_devices()) == set(repro.DEVICES)

    def test_paper_instance_synthesis(self):
        inst = repro.synthesize_paper_instance("berlin52")
        assert inst.n == 52

    def test_ils_through_public_api(self):
        from repro.ils import IterationLimit

        inst = repro.generate_instance(120, seed=1)
        ls = repro.LocalSearch("gtx680-cuda", strategy="batch")
        ils = repro.IteratedLocalSearch(ls, termination=IterationLimit(2), seed=0)
        res = ils.run(inst)
        assert res.best_length < res.initial_length

    def test_errors_inherit_reproerror(self):
        from repro.errors import (
            CheckpointError,
            DeviceLostError,
            FaultError,
            GpuSimError,
            RetryExhaustedError,
            SolverError,
            TourError,
            TransferCorruptionError,
            TransientKernelFault,
            TSPLIBError,
        )

        for exc in (GpuSimError, SolverError, TourError, TSPLIBError,
                    FaultError, CheckpointError):
            assert issubclass(exc, repro.ReproError)
        for exc in (DeviceLostError, RetryExhaustedError,
                    TransferCorruptionError, TransientKernelFault):
            assert issubclass(exc, FaultError)

    def test_fault_api_exposed(self):
        from repro.gpusim import (
            FaultCounters,
            FaultEvent,
            FaultInjector,
            FaultPlan,
            GPUExecutor,
            RetryPolicy,
            buffer_checksum,
        )

        plan = FaultPlan.parse("transient:device=0,tile=1")
        assert isinstance(plan.injector(), FaultInjector)
        assert plan.events == (FaultEvent("transient", 0, tile=1),)
        assert RetryPolicy().max_attempts == 3
        assert FaultCounters().faults_injected == 0
        assert buffer_checksum(np.zeros(4, dtype=np.float32)) == \
            buffer_checksum(np.zeros(4, dtype=np.float32))
        assert GPUExecutor is not None

    def test_checkpoint_api_exposed(self, tmp_path):
        from repro.core import (
            CHECKPOINT_VERSION,
            Checkpoint,
            load_checkpoint,
            save_checkpoint,
        )

        path = tmp_path / "ck.json"
        save_checkpoint(path, "test", {"x": 1})
        cp = load_checkpoint(path, kind="test")
        assert isinstance(cp, Checkpoint)
        assert cp.version == CHECKPOINT_VERSION
        assert cp.payload == {"x": 1}
