"""Tests for the doubly-linked tour representation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TourError
from repro.tour.doubly_linked import DoublyLinkedTour


class TestConstruction:
    def test_round_trip_identity(self):
        dl = DoublyLinkedTour(np.arange(10))
        assert np.array_equal(dl.to_order(0), np.arange(10))

    def test_round_trip_rotated(self):
        order = np.array([3, 1, 4, 0, 2])
        dl = DoublyLinkedTour(order)
        # starting from city 3 reproduces the original order
        assert np.array_equal(dl.to_order(3), order)

    def test_successor_predecessor_inverse(self):
        order = np.random.default_rng(0).permutation(40)
        dl = DoublyLinkedTour(order)
        for c in range(40):
            assert dl.predecessor(dl.successor(c)) == c

    def test_consistency_check(self):
        dl = DoublyLinkedTour(np.arange(8))
        assert dl.is_consistent()
        dl.nxt[0], dl.nxt[1] = dl.nxt[1], dl.nxt[0]  # break it
        assert not dl.is_consistent()

    @given(st.integers(5, 100))
    @settings(max_examples=30, deadline=None)
    def test_random_permutations_consistent(self, n):
        order = np.random.default_rng(n).permutation(n)
        assert DoublyLinkedTour(order).is_consistent()


class TestRelocateSegment:
    def test_single_city_relocation(self):
        dl = DoublyLinkedTour(np.arange(6))
        # move city 1 to follow city 4: 0 2 3 4 1 5
        dl.relocate_segment(1, 1, 4)
        assert np.array_equal(dl.to_order(0), [0, 2, 3, 4, 1, 5])
        assert dl.is_consistent()

    def test_chain_relocation_preserves_internal_order(self):
        dl = DoublyLinkedTour(np.arange(8))
        # move chain 2->3 to follow 6: 0 1 4 5 6 2 3 7
        dl.relocate_segment(2, 3, 6)
        assert np.array_equal(dl.to_order(0), [0, 1, 4, 5, 6, 2, 3, 7])

    def test_relocate_after_self_rejected(self):
        dl = DoublyLinkedTour(np.arange(6))
        with pytest.raises(TourError):
            dl.relocate_segment(2, 3, 2)

    def test_whole_tour_segment_rejected(self):
        dl = DoublyLinkedTour(np.arange(4))
        # segment covering everything: prv[start] == end
        with pytest.raises(TourError):
            dl.relocate_segment(1, 0, 2)

    def test_relocation_keeps_cycle(self):
        rng = np.random.default_rng(3)
        dl = DoublyLinkedTour(rng.permutation(30))
        dl.relocate_segment(5, 5, 20)
        assert dl.is_consistent()
        assert np.array_equal(np.sort(dl.to_order(0)), np.arange(30))
