"""Tests (incl. property-based) for elementary tour operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TourError
from repro.tour.operations import (
    apply_two_opt_move,
    double_bridge,
    random_tour,
    reverse_segment,
    segment_reversal_perturbation,
)

perm_strategy = st.integers(min_value=8, max_value=200).map(
    lambda n: np.random.default_rng(n).permutation(n)
)


class TestReverseSegment:
    def test_basic(self):
        out = reverse_segment(np.array([0, 1, 2, 3, 4]), 1, 3)
        assert list(out) == [0, 3, 2, 1, 4]

    def test_original_untouched(self):
        a = np.array([0, 1, 2, 3])
        reverse_segment(a, 0, 3)
        assert list(a) == [0, 1, 2, 3]

    def test_single_element_noop(self):
        out = reverse_segment(np.array([0, 1, 2]), 1, 1)
        assert list(out) == [0, 1, 2]

    def test_invalid_bounds(self):
        with pytest.raises(TourError):
            reverse_segment(np.array([0, 1, 2]), 2, 1)
        with pytest.raises(TourError):
            reverse_segment(np.array([0, 1, 2]), 0, 3)


class TestApplyTwoOptMove:
    def test_known_move(self):
        # removing edges (1,2) and (4,5): reverse positions 2..4
        out = apply_two_opt_move(np.arange(6), 1, 4)
        assert list(out) == [0, 1, 4, 3, 2, 5]

    def test_move_is_involution(self):
        rng = np.random.default_rng(0)
        order = rng.permutation(20)
        once = apply_two_opt_move(order, 3, 11)
        twice = apply_two_opt_move(once, 3, 11)
        assert np.array_equal(order, twice)

    @given(perm_strategy, st.data())
    @settings(max_examples=50, deadline=None)
    def test_result_is_permutation(self, order, data):
        n = order.size
        i = data.draw(st.integers(0, n - 2))
        j = data.draw(st.integers(i + 1, n - 1))
        out = apply_two_opt_move(order, i, j)
        assert np.array_equal(np.sort(out), np.arange(n))

    def test_invalid_positions(self):
        with pytest.raises(TourError):
            apply_two_opt_move(np.arange(5), 3, 3)


class TestRandomTour:
    def test_is_permutation(self):
        t = random_tour(50, seed=1)
        assert np.array_equal(np.sort(t), np.arange(50))

    def test_deterministic(self):
        assert np.array_equal(random_tour(30, seed=2), random_tour(30, seed=2))

    def test_invalid_n(self):
        with pytest.raises(TourError):
            random_tour(0)


class TestDoubleBridge:
    @given(perm_strategy, st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_produces_permutation(self, order, seed):
        out = double_bridge(order, seed)
        assert np.array_equal(np.sort(out), np.arange(order.size))

    def test_changes_at_most_four_edges(self):
        """The kick is O(1) damage: it replaces at most 4 tour edges.

        In array form the three cut points change the three junction
        edges (the cycle-closing edge survives); segment reversal ties can
        reduce it further but never increase it.
        """
        n = 50
        order = np.arange(n)
        for seed in range(20):
            out = double_bridge(order, seed=seed)

            def edge_set(t):
                return {
                    frozenset((int(t[k]), int(t[(k + 1) % n]))) for k in range(n)
                }

            removed = edge_set(order) - edge_set(out)
            assert 1 <= len(removed) <= 4

    def test_small_tours_fall_back(self):
        out = double_bridge(np.arange(5), seed=0)
        assert np.array_equal(np.sort(out), np.arange(5))

    def test_deterministic(self):
        a = double_bridge(np.arange(30), seed=9)
        b = double_bridge(np.arange(30), seed=9)
        assert np.array_equal(a, b)


class TestSegmentReversalPerturbation:
    @given(perm_strategy, st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_produces_permutation(self, order, seed):
        out = segment_reversal_perturbation(order, seed)
        assert np.array_equal(np.sort(out), np.arange(order.size))

    def test_tiny_input_copied(self):
        order = np.arange(3)
        out = segment_reversal_perturbation(order, 0)
        assert np.array_equal(out, order)
        assert out is not order
