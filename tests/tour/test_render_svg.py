"""Tests for SVG tour rendering."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.errors import TourError
from repro.tour.render_svg import save_tour_svg, tour_to_svg


def square():
    return np.array([[0.0, 0.0], [10.0, 0.0], [10.0, 10.0], [0.0, 10.0]])


class TestTourToSvg:
    def test_valid_xml(self):
        svg = tour_to_svg(square(), np.arange(4))
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_polyline_closed(self):
        svg = tour_to_svg(square(), np.arange(4), show_cities=False)
        root = ET.fromstring(svg)
        polyline = root.find(".//{http://www.w3.org/2000/svg}polyline")
        pts = polyline.get("points").split()
        assert len(pts) == 5  # 4 cities + closing point
        assert pts[0] == pts[-1]

    def test_city_markers(self):
        svg = tour_to_svg(square(), np.arange(4), show_cities=True)
        root = ET.fromstring(svg)
        circles = root.findall(".//{http://www.w3.org/2000/svg}circle")
        assert len(circles) == 4

    def test_title_escaped(self):
        svg = tour_to_svg(square(), np.arange(4), title="a<b & c>d")
        assert "a&lt;b &amp; c&gt;d" in svg

    def test_coordinates_fit_canvas(self):
        rng = np.random.default_rng(0)
        coords = rng.uniform(-500, 500, (40, 2))
        svg = tour_to_svg(coords, rng.permutation(40), width=400, height=300,
                          margin=10, show_cities=False)
        root = ET.fromstring(svg)
        polyline = root.find(".//{http://www.w3.org/2000/svg}polyline")
        for pair in polyline.get("points").split():
            x, y = (float(v) for v in pair.split(","))
            assert 10 - 1e-6 <= x <= 390 + 1e-6
            assert 10 - 1e-6 <= y <= 290 + 1e-6

    def test_bad_tour_rejected(self):
        with pytest.raises(TourError):
            tour_to_svg(square(), np.array([0, 1, 1, 3]))

    def test_bad_canvas_rejected(self):
        with pytest.raises(ValueError):
            tour_to_svg(square(), np.arange(4), width=10, margin=20)

    def test_degenerate_coords(self):
        coords = np.zeros((4, 2))
        svg = tour_to_svg(coords, np.arange(4))  # must not divide by zero
        assert "svg" in svg

    def test_save(self, tmp_path):
        path = tmp_path / "tour.svg"
        save_tour_svg(path, square(), np.arange(4))
        assert path.read_text().startswith("<svg")
