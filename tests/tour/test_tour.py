"""Tests for the Tour class."""

import numpy as np
import pytest

from repro.errors import TourError
from repro.tour.tour import Tour, validate_tour


class TestValidateTour:
    def test_accepts_permutation(self):
        out = validate_tour(np.array([2, 0, 1]))
        assert out.dtype == np.int64

    def test_rejects_duplicates(self):
        with pytest.raises(TourError):
            validate_tour(np.array([0, 1, 1]))

    def test_rejects_out_of_range(self):
        with pytest.raises(TourError):
            validate_tour(np.array([0, 1, 3]))

    def test_rejects_negative(self):
        with pytest.raises(TourError):
            validate_tour(np.array([-1, 0, 1]))

    def test_rejects_2d(self):
        with pytest.raises(TourError):
            validate_tour(np.zeros((2, 2), dtype=int))

    def test_rejects_empty(self):
        with pytest.raises(TourError):
            validate_tour(np.array([], dtype=int))

    def test_rejects_non_integer(self):
        with pytest.raises(TourError):
            validate_tour(np.array([0.5, 1.0, 2.0]))

    def test_accepts_integer_valued_floats(self):
        out = validate_tour(np.array([2.0, 0.0, 1.0]))
        assert np.array_equal(out, [2, 0, 1])

    def test_length_mismatch(self):
        with pytest.raises(TourError):
            validate_tour(np.array([0, 1, 2]), n=4)


class TestTour:
    def test_identity(self, inst100):
        t = Tour.identity(inst100)
        assert np.array_equal(t.order, np.arange(100))

    def test_length_cached_and_consistent(self, inst100):
        t = Tour.identity(inst100)
        assert t.length() == inst100.tour_length(t.order)
        assert t.length() == t.length()

    def test_order_readonly(self, inst100):
        t = Tour.identity(inst100)
        with pytest.raises(ValueError):
            t.order[0] = 5

    def test_reverse_inplace_invalidates_length(self, inst100):
        t = Tour.identity(inst100)
        before = t.length()
        t.reverse_inplace(10, 50)
        assert t.length() == inst100.tour_length(t.order)
        # reversing back restores the original length
        t.reverse_inplace(10, 50)
        assert t.length() == before

    def test_reverse_bad_positions(self, inst100):
        t = Tour.identity(inst100)
        with pytest.raises(TourError):
            t.reverse_inplace(50, 10)

    def test_ordered_coords_follow_route(self, inst100):
        rng = np.random.default_rng(0)
        order = rng.permutation(100)
        t = Tour(inst100, order)
        oc = t.ordered_coords()
        assert oc.dtype == np.float32
        assert np.allclose(oc, inst100.coords[order].astype(np.float32))

    def test_copy_is_independent(self, inst100):
        t = Tour.identity(inst100)
        c = t.copy()
        c.reverse_inplace(1, 5)
        assert not np.array_equal(t.order, c.order)

    def test_equality(self, inst100):
        a = Tour.identity(inst100)
        b = Tour.identity(inst100)
        assert a == b
        b.reverse_inplace(0, 2)
        assert a != b

    def test_unhashable(self, inst100):
        with pytest.raises(TypeError):
            hash(Tour.identity(inst100))

    def test_set_order_validates(self, inst100):
        t = Tour.identity(inst100)
        with pytest.raises(TourError):
            t.set_order(np.zeros(100, dtype=int))
