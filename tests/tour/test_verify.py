"""Tests for the independent solution verifier."""

import numpy as np

from repro.core.solver import TwoOptSolver
from repro.tour.verify import tours_equivalent, verify_solution


class TestVerifySolution:
    def test_certifies_solver_output(self, inst300):
        res = TwoOptSolver("gtx680-cuda", strategy="batch").solve(inst300)
        report = verify_solution(
            inst300, res.tour.order, expected_length=res.final_length
        )
        assert report.ok
        assert report.valid_permutation
        assert report.is_two_opt_minimum
        assert report.worst_remaining_gain == 0

    def test_detects_bad_permutation(self, inst100):
        report = verify_solution(inst100, np.zeros(100, dtype=int))
        assert not report.valid_permutation
        assert not report.ok

    def test_detects_non_minimum(self, inst300):
        rng = np.random.default_rng(0)
        report = verify_solution(inst300, rng.permutation(300))
        assert report.valid_permutation
        assert report.is_two_opt_minimum is False
        assert report.worst_remaining_gain < 0
        assert not report.ok

    def test_length_mismatch_flagged(self, inst100):
        order = np.arange(100)
        report = verify_solution(
            inst100, order, expected_length=1, length_tolerance=0
        )
        assert report.valid_permutation
        assert report.is_two_opt_minimum is None  # verification aborted

    def test_can_skip_minimum_check(self, inst100):
        report = verify_solution(
            inst100, np.arange(100), check_local_minimum=False
        )
        assert report.is_two_opt_minimum is None
        assert report.canonical_length == inst100.tour_length(np.arange(100))


class TestToursEquivalent:
    def test_identical(self):
        t = np.array([0, 2, 1, 3])
        assert tours_equivalent(t, t)

    def test_rotation(self):
        a = np.array([0, 1, 2, 3, 4])
        assert tours_equivalent(a, np.roll(a, 2))

    def test_reversal(self):
        a = np.array([0, 1, 2, 3, 4])
        assert tours_equivalent(a, a[::-1])

    def test_rotated_reversal(self):
        a = np.array([0, 3, 1, 4, 2])
        b = np.roll(a[::-1], 3)
        assert tours_equivalent(a, b)

    def test_different_tours(self):
        assert not tours_equivalent(np.array([0, 1, 2, 3]), np.array([0, 2, 1, 3]))

    def test_different_sizes(self):
        assert not tours_equivalent(np.array([0, 1, 2]), np.array([0, 1, 2, 3]))

    def test_solver_invariance(self, inst300):
        """Starting the same instance from rotated initial tours must
        produce equivalent-or-different *valid* tours, and equivalence
        detection must accept a rotated copy of the result."""
        res = TwoOptSolver("gtx680-cuda").solve(inst300)
        t = res.tour.order
        assert tours_equivalent(t, np.roll(t, 17))
        assert tours_equivalent(t, t[::-1])
