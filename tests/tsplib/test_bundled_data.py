"""Tests for the bundled sample .tsp/.tour files in data/."""

from pathlib import Path

import numpy as np
import pytest

from repro.tour.verify import verify_solution
from repro.tsplib.generators import generate_instance
from repro.tsplib.parser import load_tsplib, parse_tour_file

DATA = Path(__file__).resolve().parents[2] / "data"


@pytest.mark.skipif(not DATA.exists(), reason="data/ not present")
class TestBundledData:
    def test_all_samples_load(self):
        files = sorted(DATA.glob("*.tsp"))
        assert len(files) == 3
        for f in files:
            inst = load_tsplib(f)
            assert inst.n > 0
            assert inst.coords is not None

    def test_sample52_matches_generator(self):
        """The shipped file must equal its documented derivation."""
        inst = load_tsplib(DATA / "sample52-uniform.tsp")
        regen = generate_instance(52, distribution="uniform", seed=2013)
        assert inst.n == 52
        assert np.allclose(inst.coords, regen.coords)

    def test_sample_sizes(self):
        assert load_tsplib(DATA / "sample120-clustered.tsp").n == 120
        assert load_tsplib(DATA / "sample200-grid.tsp").n == 200

    def test_bundled_tour_is_certified_local_minimum(self):
        inst = load_tsplib(DATA / "sample52-uniform.tsp")
        tour = parse_tour_file((DATA / "sample52-uniform.2opt.tour").read_text())
        report = verify_solution(inst, tour)
        assert report.ok
        assert report.is_two_opt_minimum

    def test_bundled_tour_beats_identity(self):
        inst = load_tsplib(DATA / "sample52-uniform.tsp")
        tour = parse_tour_file((DATA / "sample52-uniform.2opt.tour").read_text())
        assert inst.tour_length(tour) < inst.tour_length(np.arange(52))
