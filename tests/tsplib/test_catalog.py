"""Tests for the paper-instance catalog."""

import pytest

from repro.tsplib.catalog import (
    PAPER_INSTANCES,
    instance_info,
    table1_instances,
    table2_instances,
)


class TestCatalogContents:
    def test_counts_match_paper(self):
        assert len(table1_instances()) == 12
        assert len(table2_instances()) == 27

    def test_table2_covers_berlin52_to_lrb744710(self):
        rows = table2_instances()
        assert rows[0].name == "berlin52" and rows[0].n == 52
        assert rows[-1].name == "lrb744710" and rows[-1].n == 744_710

    def test_sizes_encode_names(self):
        # every catalog name ends with its city count (TSPLIB convention)
        for info in PAPER_INSTANCES:
            digits = "".join(ch for ch in info.name if ch.isdigit())
            assert int(digits) == info.n

    def test_table1_subset_of_table2_plus_berlin(self):
        t2 = {i.name for i in table2_instances()}
        for info in table1_instances():
            assert info.name in t2

    def test_known_bks_values(self):
        assert instance_info("berlin52").bks == 7542
        assert instance_info("pr2392").bks == 378032
        assert instance_info("sw24978").bks == 855597

    def test_pair_count(self):
        info = instance_info("kroE100")
        assert info.pair_count == 100 * 99 // 2

    def test_lookup_case_insensitive(self):
        assert instance_info("KROA200").n == 200

    def test_unknown_instance_raises(self):
        with pytest.raises(KeyError):
            instance_info("nonexistent99")

    def test_max_n_filter(self):
        rows = table2_instances(max_n=1000)
        assert all(r.n <= 1000 for r in rows)
        assert len(rows) == 9
