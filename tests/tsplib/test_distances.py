"""Tests for TSPLIB distance metrics, including TSPLIB's canonical checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tsplib.distances import (
    EdgeWeightType,
    att_distance,
    ceil2d_distance,
    euc2d_distance,
    geo_distance,
    man2d_distance,
    max2d_distance,
    metric_function,
    pairwise_distance_matrix,
    tour_length,
)

coords_strategy = st.tuples(
    st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
    st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
)


class TestEuc2D:
    def test_simple_345_triangle(self):
        assert euc2d_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5

    def test_rounds_to_nearest(self):
        # distance sqrt(2) = 1.414... -> 1
        assert euc2d_distance(np.array([0.0, 0.0]), np.array([1.0, 1.0])) == 1
        # distance 1.5 -> 2 (round half up via +0.5 floor)
        assert euc2d_distance(np.array([0.0, 0.0]), np.array([1.5, 0.0])) == 2

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(0, 1000, (50, 2))
        b = rng.uniform(0, 1000, (50, 2))
        vec = euc2d_distance(a, b)
        for k in range(50):
            assert vec[k] == euc2d_distance(a[k], b[k])

    @given(coords_strategy, coords_strategy)
    @settings(max_examples=100)
    def test_symmetry(self, p, q):
        a, b = np.array(p), np.array(q)
        assert euc2d_distance(a, b) == euc2d_distance(b, a)

    @given(coords_strategy)
    @settings(max_examples=50)
    def test_identity(self, p):
        a = np.array(p)
        assert euc2d_distance(a, a) == 0

    @given(coords_strategy, coords_strategy, coords_strategy)
    @settings(max_examples=100)
    def test_triangle_inequality_with_rounding_slack(self, p, q, r):
        a, b, c = np.array(p), np.array(q), np.array(r)
        # rounding can violate the exact triangle inequality by at most 1
        assert euc2d_distance(a, c) <= euc2d_distance(a, b) + euc2d_distance(b, c) + 1


class TestOtherMetrics:
    def test_ceil2d(self):
        assert ceil2d_distance(np.array([0.0, 0.0]), np.array([1.0, 1.0])) == 2

    def test_man2d(self):
        assert man2d_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 7

    def test_max2d(self):
        assert max2d_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 4

    def test_att_pseudo_euclidean(self):
        d = att_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
        # rij = sqrt(25/10) = 1.581, tij = 2 -> tij >= rij -> 2
        assert d == 2

    def test_att_rounds_up_when_under(self):
        d = att_distance(np.array([0.0, 0.0]), np.array([10.0, 0.0]))
        # rij = sqrt(10) = 3.162, tij = 3 < rij -> 4
        assert d == 4

    def test_geo_is_symmetric(self):
        a = np.array([38.24, 20.42])
        b = np.array([39.57, 26.15])
        assert geo_distance(a, b) == geo_distance(b, a)

    def test_geo_known_value_ulysses(self):
        # TSPLIB's GEO convention: ulysses16 cities 1 and 2
        a = np.array([38.24, 20.42])
        b = np.array([39.57, 26.15])
        assert geo_distance(a, b) == 509


class TestMetricFunction:
    @pytest.mark.parametrize(
        "metric",
        [EdgeWeightType.EUC_2D, EdgeWeightType.CEIL_2D, EdgeWeightType.MAN_2D,
         EdgeWeightType.MAX_2D, EdgeWeightType.ATT, EdgeWeightType.GEO],
    )
    def test_all_coordinate_metrics_resolve(self, metric):
        assert callable(metric_function(metric))

    def test_explicit_has_no_function(self):
        with pytest.raises(ValueError):
            metric_function(EdgeWeightType.EXPLICIT)

    def test_from_string_case_insensitive(self):
        assert EdgeWeightType.from_string("euc_2d") is EdgeWeightType.EUC_2D

    def test_from_string_unknown(self):
        with pytest.raises(ValueError):
            EdgeWeightType.from_string("XRAY")


class TestMatrixAndTourLength:
    def test_matrix_is_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(1)
        c = rng.uniform(0, 100, (20, 2))
        m = pairwise_distance_matrix(c)
        assert np.array_equal(m, m.T)
        assert np.all(np.diag(m) == 0)

    def test_tour_length_square(self):
        c = np.array([[0.0, 0.0], [10.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
        assert tour_length(c, np.array([0, 1, 2, 3])) == 40

    def test_tour_length_invariant_under_rotation(self):
        rng = np.random.default_rng(2)
        c = rng.uniform(0, 1000, (30, 2))
        t = rng.permutation(30)
        assert tour_length(c, t) == tour_length(c, np.roll(t, 7))

    def test_tour_length_invariant_under_reversal(self):
        rng = np.random.default_rng(3)
        c = rng.uniform(0, 1000, (30, 2))
        t = rng.permutation(30)
        assert tour_length(c, t) == tour_length(c, t[::-1])

    def test_tour_length_matches_matrix_sum(self):
        rng = np.random.default_rng(4)
        c = rng.uniform(0, 500, (15, 2))
        t = rng.permutation(15)
        m = pairwise_distance_matrix(c)
        expected = sum(m[t[k], t[(k + 1) % 15]] for k in range(15))
        assert tour_length(c, t) == expected
