"""Tests for the synthetic instance generators."""

import numpy as np
import pytest

from repro.tsplib.catalog import DistributionClass
from repro.tsplib.generators import (
    DEFAULT_EXTENT,
    generate_instance,
    synthesize_paper_instance,
)


class TestGenerateInstance:
    @pytest.mark.parametrize("dist", list(DistributionClass))
    def test_all_classes_produce_valid_instances(self, dist):
        inst = generate_instance(200, distribution=dist, seed=1)
        assert inst.n == 200
        assert inst.coords.shape == (200, 2)
        assert np.all(inst.coords >= 0)
        assert np.all(inst.coords <= DEFAULT_EXTENT)

    def test_deterministic_per_seed(self):
        a = generate_instance(100, seed=5)
        b = generate_instance(100, seed=5)
        assert np.array_equal(a.coords, b.coords)

    def test_different_seeds_differ(self):
        a = generate_instance(100, seed=5)
        b = generate_instance(100, seed=6)
        assert not np.array_equal(a.coords, b.coords)

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            generate_instance(3)

    def test_name_defaults_include_class_and_size(self):
        inst = generate_instance(64, distribution="clustered", seed=0)
        assert inst.name == "synthetic-clustered-64"

    def test_string_distribution_accepted(self):
        inst = generate_instance(50, distribution="grid", seed=0)
        assert inst.n == 50

    def test_points_mostly_distinct(self):
        inst = generate_instance(1000, seed=7)
        uniq = np.unique(inst.coords, axis=0)
        assert uniq.shape[0] >= 995


class TestDistributionShapes:
    def test_clustered_has_lower_dispersion_than_uniform(self):
        """Clustered points huddle: mean nearest-neighbor distance shrinks."""
        from scipy.spatial import cKDTree

        def mean_nn(inst):
            d, _ = cKDTree(inst.coords).query(inst.coords, k=2)
            return d[:, 1].mean()

        uni = generate_instance(800, distribution="uniform", seed=3)
        clu = generate_instance(800, distribution="clustered", seed=3)
        assert mean_nn(clu) < mean_nn(uni)

    def test_grid_points_snap_to_lattice(self):
        inst = generate_instance(400, distribution="grid", seed=4)
        # jitter is at most 5% of the pitch; nearest-neighbor distances
        # concentrate near the pitch value
        from scipy.spatial import cKDTree

        d, _ = cKDTree(inst.coords).query(inst.coords, k=2)
        nn = d[:, 1]
        assert nn.std() / nn.mean() < 0.5


class TestSynthesizePaperInstance:
    def test_full_size(self):
        inst = synthesize_paper_instance("kroE100")
        assert inst.n == 100
        assert inst.name == "kroE100"

    def test_truncation_marks_name(self):
        inst = synthesize_paper_instance("pr2392", max_n=500)
        assert inst.n == 500
        assert inst.name == "pr2392@500"

    def test_deterministic_per_name(self):
        a = synthesize_paper_instance("ch130")
        b = synthesize_paper_instance("ch130")
        assert np.array_equal(a.coords, b.coords)

    def test_different_names_different_coords(self):
        a = synthesize_paper_instance("ch130")
        b = synthesize_paper_instance("ch150", max_n=130)
        assert not np.array_equal(a.coords, b.coords)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            synthesize_paper_instance("kroZ999")
