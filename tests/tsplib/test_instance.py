"""Tests for TSPInstance."""

import numpy as np
import pytest

from repro.errors import TSPLIBError
from repro.tsplib.distances import EdgeWeightType
from repro.tsplib.instance import TSPInstance


def square_instance():
    return TSPInstance(
        name="sq",
        coords=np.array([[0.0, 0.0], [10.0, 0.0], [10.0, 10.0], [0.0, 10.0]]),
    )


class TestConstruction:
    def test_requires_coords_or_matrix(self):
        with pytest.raises(TSPLIBError):
            TSPInstance(name="x", coords=None)

    def test_coords_shape_checked(self):
        with pytest.raises(TSPLIBError):
            TSPInstance(name="x", coords=np.zeros((5, 3)))

    def test_explicit_needs_matrix(self):
        with pytest.raises(TSPLIBError):
            TSPInstance(name="x", coords=np.zeros((4, 2)),
                        metric=EdgeWeightType.EXPLICIT)

    def test_matrix_must_be_square(self):
        with pytest.raises(TSPLIBError):
            TSPInstance(name="x", coords=None, metric=EdgeWeightType.EXPLICIT,
                        explicit_matrix=np.zeros((2, 3)))

    def test_matrix_must_be_symmetric(self):
        m = np.array([[0, 1], [2, 0]])
        with pytest.raises(TSPLIBError):
            TSPInstance(name="x", coords=None, metric=EdgeWeightType.EXPLICIT,
                        explicit_matrix=m)

    def test_n(self):
        assert square_instance().n == 4


class TestDistances:
    def test_scalar_distance(self):
        assert square_instance().distance(0, 1) == 10

    def test_array_distance(self):
        inst = square_instance()
        d = inst.distance(np.array([0, 1]), np.array([2, 3]))
        assert list(d) == [14, 14]

    def test_distance_matrix_matches_distance(self):
        inst = square_instance()
        m = inst.distance_matrix()
        for i in range(4):
            for j in range(4):
                assert m[i, j] == inst.distance(i, j)

    def test_tour_length_square(self):
        assert square_instance().tour_length(np.array([0, 1, 2, 3])) == 40

    def test_tour_length_crossed_is_longer(self):
        inst = square_instance()
        assert inst.tour_length(np.array([0, 2, 1, 3])) > inst.tour_length(
            np.array([0, 1, 2, 3])
        )


class TestMemoryAccounting:
    def test_lut_bytes_is_quadratic(self):
        inst = square_instance()
        assert inst.lut_bytes() == 4 * 4 * 4

    def test_coords_bytes_is_linear(self):
        assert square_instance().coords_bytes() == 2 * 4 * 4

    def test_coords_float32_dtype_and_contiguity(self):
        c = square_instance().coords_float32()
        assert c.dtype == np.float32
        assert c.flags["C_CONTIGUOUS"]
