"""Tests for k-nearest-neighbor lists."""

import numpy as np
import pytest

from repro.tsplib.neighbors import k_nearest_neighbors, neighbor_pairs_sorted


class TestKNearestNeighbors:
    def test_shape(self):
        rng = np.random.default_rng(0)
        c = rng.uniform(0, 100, (50, 2))
        knn = k_nearest_neighbors(c, 5)
        assert knn.shape == (50, 5)

    def test_self_excluded(self):
        rng = np.random.default_rng(1)
        c = rng.uniform(0, 100, (30, 2))
        knn = k_nearest_neighbors(c, 4)
        for i in range(30):
            assert i not in knn[i]

    def test_nearest_is_correct_brute_force(self):
        rng = np.random.default_rng(2)
        c = rng.uniform(0, 100, (40, 2))
        knn = k_nearest_neighbors(c, 1)
        for i in range(40):
            d = np.linalg.norm(c - c[i], axis=1)
            d[i] = np.inf
            assert knn[i, 0] == np.argmin(d)

    def test_k_clamped_to_n_minus_1(self):
        c = np.array([[0.0, 0], [1, 0], [2, 0]])
        knn = k_nearest_neighbors(c, 10)
        assert knn.shape == (3, 2)

    def test_duplicate_points_handled(self):
        c = np.array([[0.0, 0], [0, 0], [5, 5], [9, 9]])
        knn = k_nearest_neighbors(c, 3)
        for i in range(4):
            assert len(set(knn[i])) == 3
            assert i not in knn[i]

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            k_nearest_neighbors(np.zeros((1, 2)), 1)


class TestNeighborPairs:
    def test_pairs_are_canonical_and_unique(self):
        rng = np.random.default_rng(3)
        c = rng.uniform(0, 100, (60, 2))
        pairs = neighbor_pairs_sorted(c, 6)
        assert np.all(pairs[:, 0] < pairs[:, 1])
        assert np.unique(pairs, axis=0).shape == pairs.shape

    def test_sorted_by_length(self):
        rng = np.random.default_rng(4)
        c = rng.uniform(0, 100, (60, 2))
        pairs = neighbor_pairs_sorted(c, 6)
        d = np.linalg.norm(c[pairs[:, 0]] - c[pairs[:, 1]], axis=1)
        assert np.all(np.diff(d) >= -1e-9)

    def test_every_city_appears(self):
        rng = np.random.default_rng(5)
        c = rng.uniform(0, 100, (40, 2))
        pairs = neighbor_pairs_sorted(c, 4)
        assert set(pairs.ravel()) == set(range(40))
