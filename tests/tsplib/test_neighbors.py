"""Tests for k-nearest-neighbor lists."""

import numpy as np
import pytest

from repro.tsplib.neighbors import k_nearest_neighbors, neighbor_pairs_sorted


class TestKNearestNeighbors:
    def test_shape(self):
        rng = np.random.default_rng(0)
        c = rng.uniform(0, 100, (50, 2))
        knn = k_nearest_neighbors(c, 5)
        assert knn.shape == (50, 5)

    def test_self_excluded(self):
        rng = np.random.default_rng(1)
        c = rng.uniform(0, 100, (30, 2))
        knn = k_nearest_neighbors(c, 4)
        for i in range(30):
            assert i not in knn[i]

    def test_nearest_is_correct_brute_force(self):
        rng = np.random.default_rng(2)
        c = rng.uniform(0, 100, (40, 2))
        knn = k_nearest_neighbors(c, 1)
        for i in range(40):
            d = np.linalg.norm(c - c[i], axis=1)
            d[i] = np.inf
            assert knn[i, 0] == np.argmin(d)

    def test_k_clamped_to_n_minus_1(self):
        c = np.array([[0.0, 0], [1, 0], [2, 0]])
        knn = k_nearest_neighbors(c, 10)
        assert knn.shape == (3, 2)

    def test_duplicate_points_handled(self):
        c = np.array([[0.0, 0], [0, 0], [5, 5], [9, 9]])
        knn = k_nearest_neighbors(c, 3)
        for i in range(4):
            assert len(set(knn[i])) == 3
            assert i not in knn[i]

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            k_nearest_neighbors(np.zeros((1, 2)), 1)

    def test_k_below_one_rejected(self):
        with pytest.raises(ValueError):
            k_nearest_neighbors(np.zeros((5, 2)), 0)

    def test_k_equal_n_minus_1_full_neighborhood(self):
        rng = np.random.default_rng(6)
        c = rng.uniform(0, 100, (25, 2))
        knn = k_nearest_neighbors(c, 24)
        for i in range(25):
            assert set(knn[i]) == set(range(25)) - {i}

    def test_ties_break_by_lower_index(self):
        """Equidistant neighbors must come out lowest-index-first, so
        cached k-NN artifacts are identical across runs and platforms."""
        # city 0 at the center of a square: 4 equidistant corners
        c = np.array([[0.0, 0], [1, 1], [-1, 1], [1, -1], [-1, -1],
                      [9, 9], [10, 10]])
        knn = k_nearest_neighbors(c, 4)
        assert list(knn[0]) == [1, 2, 3, 4]

    def test_deterministic_across_calls(self):
        rng = np.random.default_rng(7)
        # integer grid coordinates force many exact distance ties
        c = rng.integers(0, 12, (80, 2)).astype(np.float64)
        c += rng.integers(0, 2, (80, 2)) * 0.0  # keep exact ties
        a = k_nearest_neighbors(c, 6)
        b = k_nearest_neighbors(np.ascontiguousarray(c[::-1])[::-1], 6)
        assert np.array_equal(a, b)

    def test_rows_sorted_by_distance_then_index(self):
        rng = np.random.default_rng(8)
        c = rng.integers(0, 10, (60, 2)).astype(np.float64)
        knn = k_nearest_neighbors(c, 8)
        for i in range(60):
            d2 = ((c[knn[i]] - c[i]) ** 2).sum(axis=1)
            keys = list(zip(d2.tolist(), knn[i].tolist()))
            assert keys == sorted(keys)


class TestNeighborPairs:
    def test_pairs_are_canonical_and_unique(self):
        rng = np.random.default_rng(3)
        c = rng.uniform(0, 100, (60, 2))
        pairs = neighbor_pairs_sorted(c, 6)
        assert np.all(pairs[:, 0] < pairs[:, 1])
        assert np.unique(pairs, axis=0).shape == pairs.shape

    def test_sorted_by_length(self):
        rng = np.random.default_rng(4)
        c = rng.uniform(0, 100, (60, 2))
        pairs = neighbor_pairs_sorted(c, 6)
        d = np.linalg.norm(c[pairs[:, 0]] - c[pairs[:, 1]], axis=1)
        assert np.all(np.diff(d) >= -1e-9)

    def test_every_city_appears(self):
        rng = np.random.default_rng(5)
        c = rng.uniform(0, 100, (40, 2))
        pairs = neighbor_pairs_sorted(c, 4)
        assert set(pairs.ravel()) == set(range(40))

    def test_tied_lengths_ordered_canonically(self):
        rng = np.random.default_rng(9)
        c = rng.integers(0, 8, (50, 2)).astype(np.float64)
        pairs = neighbor_pairs_sorted(c, 5)
        d = np.linalg.norm(c[pairs[:, 0]] - c[pairs[:, 1]], axis=1)
        keys = list(zip(d.tolist(), pairs[:, 0].tolist(),
                        pairs[:, 1].tolist()))
        assert keys == sorted(keys)
