"""Tests for the TSPLIB parser."""

import numpy as np
import pytest

from repro.errors import TSPLIBFormatError, UnsupportedEdgeWeightError
from repro.tsplib.distances import EdgeWeightType
from repro.tsplib.parser import loads_tsplib, parse_tour_file

SIMPLE = """\
NAME : tiny4
TYPE : TSP
COMMENT : four corners
DIMENSION : 4
EDGE_WEIGHT_TYPE : EUC_2D
NODE_COORD_SECTION
1 0 0
2 10 0
3 10 10
4 0 10
EOF
"""


class TestCoordinateParsing:
    def test_basic_fields(self):
        inst = loads_tsplib(SIMPLE)
        assert inst.name == "tiny4"
        assert inst.n == 4
        assert inst.metric is EdgeWeightType.EUC_2D
        assert inst.comment == "four corners"
        assert np.array_equal(inst.coords, [[0, 0], [10, 0], [10, 10], [0, 10]])

    def test_distance_from_parsed(self):
        inst = loads_tsplib(SIMPLE)
        assert inst.distance(0, 1) == 10
        assert inst.distance(0, 2) == 14  # sqrt(200)=14.14 -> 14

    def test_headers_without_colon(self):
        text = SIMPLE.replace("EDGE_WEIGHT_TYPE : EUC_2D", "EDGE_WEIGHT_TYPE EUC_2D")
        assert loads_tsplib(text).metric is EdgeWeightType.EUC_2D

    def test_float_coordinates(self):
        text = SIMPLE.replace("2 10 0", "2 10.5 0.25")
        inst = loads_tsplib(text)
        assert inst.coords[1, 0] == 10.5

    def test_blank_lines_ignored(self):
        text = SIMPLE.replace("NODE_COORD_SECTION\n", "NODE_COORD_SECTION\n\n\n")
        assert loads_tsplib(text).n == 4

    def test_missing_dimension_rejected(self):
        text = SIMPLE.replace("DIMENSION : 4\n", "")
        with pytest.raises(TSPLIBFormatError):
            loads_tsplib(text)

    def test_wrong_coord_count_rejected(self):
        text = SIMPLE.replace("4 0 10\n", "")
        with pytest.raises(TSPLIBFormatError):
            loads_tsplib(text)

    def test_unsupported_metric_rejected(self):
        text = SIMPLE.replace("EUC_2D", "EUC_3D")
        with pytest.raises(UnsupportedEdgeWeightError):
            loads_tsplib(text)

    def test_non_tsp_type_rejected(self):
        text = SIMPLE.replace("TYPE : TSP", "TYPE : CVRP")
        with pytest.raises(TSPLIBFormatError):
            loads_tsplib(text)

    def test_bad_coord_line_rejected(self):
        text = SIMPLE.replace("1 0 0", "1 0")
        with pytest.raises(TSPLIBFormatError):
            loads_tsplib(text)

    def test_data_outside_section_rejected(self):
        text = SIMPLE.replace("NODE_COORD_SECTION\n", "")
        with pytest.raises(TSPLIBFormatError):
            loads_tsplib(text)


EXPLICIT_FULL = """\
NAME : m3
TYPE : TSP
DIMENSION : 3
EDGE_WEIGHT_TYPE : EXPLICIT
EDGE_WEIGHT_FORMAT : FULL_MATRIX
EDGE_WEIGHT_SECTION
0 2 3
2 0 4
3 4 0
EOF
"""


class TestExplicitMatrices:
    def test_full_matrix(self):
        inst = loads_tsplib(EXPLICIT_FULL)
        assert inst.n == 3
        assert inst.distance(0, 2) == 3
        assert inst.tour_length(np.array([0, 1, 2])) == 2 + 4 + 3

    def test_upper_row(self):
        text = EXPLICIT_FULL.replace("FULL_MATRIX", "UPPER_ROW").replace(
            "0 2 3\n2 0 4\n3 4 0\n", "2 3\n4\n"
        )
        inst = loads_tsplib(text)
        assert inst.distance(0, 1) == 2
        assert inst.distance(1, 2) == 4
        assert inst.distance(2, 0) == 3

    def test_lower_diag_row(self):
        text = EXPLICIT_FULL.replace("FULL_MATRIX", "LOWER_DIAG_ROW").replace(
            "0 2 3\n2 0 4\n3 4 0\n", "0\n2 0\n3 4 0\n"
        )
        inst = loads_tsplib(text)
        assert inst.distance(0, 1) == 2
        assert inst.distance(0, 2) == 3

    def test_upper_diag_row(self):
        text = EXPLICIT_FULL.replace("FULL_MATRIX", "UPPER_DIAG_ROW").replace(
            "0 2 3\n2 0 4\n3 4 0\n", "0 2 3\n0 4\n0\n"
        )
        inst = loads_tsplib(text)
        assert inst.distance(1, 2) == 4

    def test_asymmetric_full_matrix_rejected(self):
        text = EXPLICIT_FULL.replace("2 0 4", "9 0 4")
        with pytest.raises(TSPLIBFormatError):
            loads_tsplib(text)

    def test_wrong_value_count_rejected(self):
        text = EXPLICIT_FULL.replace("3 4 0\n", "3 4\n")
        with pytest.raises(TSPLIBFormatError):
            loads_tsplib(text)

    def test_unknown_format_rejected(self):
        text = EXPLICIT_FULL.replace("FULL_MATRIX", "SPARSE_THING")
        with pytest.raises(UnsupportedEdgeWeightError):
            loads_tsplib(text)


TOUR_FILE = """\
NAME : tiny4.tour
TYPE : TOUR
DIMENSION : 4
TOUR_SECTION
1
3
2
4
-1
EOF
"""


class TestTourFiles:
    def test_parse_tour(self):
        t = parse_tour_file(TOUR_FILE)
        assert np.array_equal(t, [0, 2, 1, 3])

    def test_empty_tour_rejected(self):
        with pytest.raises(TSPLIBFormatError):
            parse_tour_file("NAME : x\nTOUR_SECTION\n-1\nEOF\n")

    def test_nodes_after_minus_one_ignored(self):
        t = parse_tour_file(TOUR_FILE.replace("-1\n", "-1\n9\n"))
        assert t.size == 4
