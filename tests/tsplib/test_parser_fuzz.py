"""Fuzz / robustness tests for the TSPLIB parser.

The parser must never crash with anything other than the documented
error types, no matter the input (a library boundary contract).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TSPLIBError
from repro.tsplib.generators import generate_instance
from repro.tsplib.parser import loads_tsplib, parse_tour_file
from repro.tsplib.writer import dumps_tsplib

ACCEPTABLE = (TSPLIBError, ValueError)


class TestParserFuzz:
    @given(st.text(max_size=500))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        try:
            loads_tsplib(text)
        except ACCEPTABLE:
            pass

    @given(st.binary(max_size=200).map(lambda b: b.decode("latin-1")))
    @settings(max_examples=100, deadline=None)
    def test_binary_garbage(self, text):
        try:
            loads_tsplib(text)
        except ACCEPTABLE:
            pass

    @given(st.integers(0, 2**32 - 1), st.integers(0, 60))
    @settings(max_examples=60, deadline=None)
    def test_random_line_deletion(self, seed, drop_line):
        """Deleting any single line from a valid file either still parses
        or raises a TSPLIBError — never an internal exception."""
        inst = generate_instance(12, seed=seed % 1000)
        lines = dumps_tsplib(inst).splitlines()
        drop = drop_line % len(lines)
        mutated = "\n".join(lines[:drop] + lines[drop + 1 :])
        try:
            parsed = loads_tsplib(mutated)
            assert parsed.n >= 1
        except ACCEPTABLE:
            pass

    @given(st.integers(0, 10**6), st.text("0123456789.eE+- ", max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_random_token_injection(self, seed, token):
        inst = generate_instance(8, seed=seed % 997)
        text = dumps_tsplib(inst).replace("NODE_COORD_SECTION",
                                          f"NODE_COORD_SECTION\n{token}")
        try:
            loads_tsplib(text)
        except ACCEPTABLE:
            pass

    @given(st.text(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_tour_parser_never_crashes_unexpectedly(self, text):
        try:
            tour = parse_tour_file(text)
            assert tour.ndim == 1
        except ACCEPTABLE:
            pass

    @given(st.integers(4, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_is_total_on_generated_instances(self, n, seed):
        inst = generate_instance(n, seed=seed)
        back = loads_tsplib(dumps_tsplib(inst))
        assert back.n == n
        assert np.allclose(back.coords, inst.coords)
