"""Round-trip tests for the TSPLIB writer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tsplib.distances import EdgeWeightType
from repro.tsplib.generators import generate_instance
from repro.tsplib.instance import TSPInstance
from repro.tsplib.parser import loads_tsplib, parse_tour_file
from repro.tsplib.writer import dumps_tour, dumps_tsplib


class TestWriterRoundTrip:
    def test_coordinates_round_trip(self):
        inst = generate_instance(50, seed=9, name="rt50")
        text = dumps_tsplib(inst)
        back = loads_tsplib(text)
        assert back.name == "rt50"
        assert back.n == 50
        assert np.allclose(back.coords, inst.coords)
        assert back.metric is inst.metric

    def test_comment_round_trip(self):
        inst = generate_instance(10, seed=0)
        inst.comment = "hello world"
        assert loads_tsplib(dumps_tsplib(inst)).comment == "hello world"

    def test_integer_coords_written_without_decimal(self):
        inst = TSPInstance(name="int", coords=np.array([[1.0, 2.0], [3.0, 4.0],
                                                        [5.0, 6.0], [7.0, 8.0]]))
        text = dumps_tsplib(inst)
        assert "1 1 2" in text  # "index x y" with integers

    def test_explicit_matrix_round_trip(self):
        m = np.array([[0, 5, 7], [5, 0, 2], [7, 2, 0]])
        inst = TSPInstance(
            name="em", coords=None, metric=EdgeWeightType.EXPLICIT,
            explicit_matrix=m,
        )
        back = loads_tsplib(dumps_tsplib(inst))
        assert np.array_equal(back.explicit_matrix, m)

    @given(st.integers(min_value=4, max_value=60), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_random_instances_round_trip_losslessly(self, n, seed):
        inst = generate_instance(n, seed=seed)
        back = loads_tsplib(dumps_tsplib(inst))
        assert back.n == inst.n
        # EUC_2D distances must survive exactly (repr() preserves floats)
        t = np.arange(n)
        assert back.tour_length(t) == inst.tour_length(t)


class TestTourWriter:
    def test_tour_round_trip(self):
        order = np.array([3, 1, 0, 2])
        back = parse_tour_file(dumps_tour(order, name="t"))
        assert np.array_equal(back, order)

    def test_one_based_on_disk(self):
        text = dumps_tour([0, 1, 2])
        section = text.split("TOUR_SECTION")[1]
        assert "\n1\n2\n3\n-1" in section
