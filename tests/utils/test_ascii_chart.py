"""Tests for the ASCII line-chart renderer."""

import pytest

from repro.utils.ascii_chart import ascii_line_chart


def simple_series():
    return {"a": ([1, 10, 100], [1.0, 5.0, 10.0])}


class TestAsciiLineChart:
    def test_contains_marks_and_legend(self):
        out = ascii_line_chart(simple_series())
        assert "legend: o a" in out
        assert "o" in out.split("legend")[0]

    def test_title_and_labels(self):
        out = ascii_line_chart(simple_series(), title="T", x_label="xs",
                               y_label="ys")
        assert out.splitlines()[0] == "T"
        assert "xs" in out
        assert "ys" in out

    def test_multiple_series_get_distinct_marks(self):
        out = ascii_line_chart({
            "low": ([1, 2, 3], [1, 1, 1]),
            "high": ([1, 2, 3], [10, 10, 10]),
        })
        assert "o low" in out and "x high" in out
        body = out.split("legend")[0]
        assert "o" in body and "x" in body

    def test_log_x_spacing(self):
        # on a log axis, equal multiplicative steps land equally far apart
        out = ascii_line_chart(
            {"s": ([1, 10, 100], [1, 2, 3])}, log_x=True, width=41, height=5,
        )
        rows = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        # highest point (y=3) is in the top row at the right edge
        assert rows[0].rstrip().endswith("o")

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"s": ([0, 1], [1, 2])}, log_x=True)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart(simple_series(), width=5)
        with pytest.raises(ValueError):
            ascii_line_chart(simple_series(), height=2)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})
        with pytest.raises(ValueError):
            ascii_line_chart({"s": ([], [])})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"s": ([1, 2], [1])})

    def test_flat_series_no_crash(self):
        out = ascii_line_chart({"s": ([1, 2, 3], [5, 5, 5])})
        assert "o" in out

    def test_overlap_marked_with_star(self):
        out = ascii_line_chart({
            "a": ([1, 2], [1, 2]),
            "b": ([1, 2], [1, 2]),
        }, width=30, height=6)
        assert "*" in out.split("legend")[0]

    def test_axis_extents_printed(self):
        out = ascii_line_chart({"s": ([100, 30_000], [2, 23])}, log_x=True)
        assert "100" in out
        assert "30,000" in out
