"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, 10)
        b = ensure_rng(7).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 2**31, 16)
        b = ensure_rng(2).integers(0, 2**31, 16)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_seedsequence_accepted(self):
        ss = np.random.SeedSequence(99)
        assert isinstance(ensure_rng(ss), np.random.Generator)

    def test_numpy_integer_seed(self):
        a = ensure_rng(np.int64(5)).integers(0, 100, 4)
        b = ensure_rng(5).integers(0, 100, 4)
        assert np.array_equal(a, b)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_streams(self):
        kids = spawn_rngs(0, 3)
        draws = [k.integers(0, 2**31, 8) for k in kids]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_given_seed(self):
        a = [g.integers(0, 100, 4) for g in spawn_rngs(42, 3)]
        b = [g.integers(0, 100, 4) for g in spawn_rngs(42, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_from_generator(self):
        g = np.random.default_rng(0)
        kids = spawn_rngs(g, 2)
        assert len(kids) == 2

    def test_zero_children(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
