"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import render_table


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["name", "value"], [("a", 1), ("bb", 22)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert lines[1].startswith("----")
        assert len(lines) == 4

    def test_title_prepended(self):
        out = render_table(["x"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_right_alignment_of_numbers(self):
        out = render_table(["k", "n"], [("a", 5), ("b", 5000)])
        rows = out.splitlines()[-2:]
        # the numeric column is right-aligned: '5' ends where '5000' ends
        assert rows[0].rstrip().endswith("5")
        assert rows[1].rstrip().endswith("5000")
        assert len(rows[0].rstrip()) == len(rows[1].rstrip()) - 3 or rows[0].index("5") > 0

    def test_mismatched_row_length_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_custom_alignment_length_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1, 2)], align=["l"])

    def test_wide_cell_expands_column(self):
        out = render_table(["h"], [("short",), ("a-much-longer-cell",)])
        sep = out.splitlines()[1]
        assert len(sep) == len("a-much-longer-cell")

    def test_empty_rows_ok(self):
        out = render_table(["only", "headers"], [])
        assert "only" in out
        assert len(out.splitlines()) == 2
