"""Tests for repro.utils.timing."""

import time

from repro.utils.timing import Stopwatch


class TestStopwatch:
    def test_lap_records_time(self):
        sw = Stopwatch()
        with sw.lap("work"):
            time.sleep(0.01)
        assert sw.laps["work"] >= 0.009

    def test_laps_accumulate(self):
        sw = Stopwatch()
        sw.add("x", 1.0)
        sw.add("x", 2.0)
        assert sw.laps["x"] == 3.0

    def test_total_sums_all_laps(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.add("b", 0.5)
        assert sw.total == 1.5

    def test_summary_contains_lap_names(self):
        sw = Stopwatch()
        sw.add("parse", 0.001)
        s = sw.summary()
        assert "parse" in s
        assert "total" in s

    def test_empty_summary(self):
        assert Stopwatch().summary() == "(no laps)"
