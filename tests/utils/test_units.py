"""Tests for repro.utils.units."""

import pytest

from repro.utils.units import format_bytes, format_count, format_seconds


class TestFormatBytes:
    def test_plain_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kibibytes(self):
        assert format_bytes(48 * 1024) == "48.0 KiB"

    def test_decimal_kilobytes(self):
        assert format_bytes(35_700, decimal=True) == "35.7 kB"

    def test_decimal_megabytes_matches_table1_style(self):
        # fnl4461 LUT: 4461^2 * 4 bytes = 79.6 MB in the paper's Table I
        assert format_bytes(4461 * 4461 * 4, decimal=True) == "79.6 MB"

    def test_gibibytes(self):
        assert format_bytes(2 * 1024**3) == "2.0 GiB"

    def test_huge_value_uses_largest_suffix(self):
        assert format_bytes(10 * 1024**4).endswith("TiB")


class TestFormatCount:
    def test_small(self):
        assert format_count(42) == "42"

    def test_thousands(self):
        assert format_count(1500) == "1.50 K"

    def test_millions(self):
        assert format_count(2.5e6) == "2.50 M"

    def test_billions(self):
        assert format_count(3.1e9) == "3.10 G"


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(81e-6) == "81 us"

    def test_milliseconds(self):
        assert format_seconds(0.0123) == "12.30 ms"

    def test_seconds(self):
        assert format_seconds(3.5) == "3.50 s"

    def test_minutes(self):
        assert format_seconds(600) == "10.0 m"

    def test_hours(self):
        assert format_seconds(7200) == "2.0 h"

    def test_negative(self):
        assert format_seconds(-0.5).startswith("-")

    def test_zero(self):
        assert format_seconds(0) == "0 us"
